//! TSC-delta replay scheduling (paper §4).
//!
//! "The user command to run a replay specifies a future time to start the
//! replay. With this future time and the start time of the replay, a TSC
//! delta can be calculated using the CPU frequency. The replay is then run
//! by looping over a TSC read, transmitting each packet burst in the
//! replay when the TSC read is greater than or equal to the burst's stored
//! TSC time plus the delta."
//!
//! [`ReplayScheduler`] encodes exactly that loop body. The *driver* of the
//! loop differs by backend: the simulator wakes the app at the requested
//! TSC; the real-time engine busy-spins. Either way, each call to
//! [`ReplayScheduler::pump`] transmits every burst that is due and reports
//! when to come back.

use choir_dpdk::{Burst, Dataplane, PortId};

use super::recording::Recording;

/// Counters describing a replay's execution quality.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayStats {
    /// Bursts fully transmitted.
    pub bursts_sent: u64,
    /// Packets transmitted.
    pub packets_sent: u64,
    /// Bursts that were released later than their target TSC (by any
    /// amount) because the loop arrived late or the NIC pushed back.
    pub late_bursts: u64,
    /// Worst observed lateness, in cycles.
    pub max_lateness_cycles: u64,
    /// Times a burst was only partially accepted by the NIC and had to be
    /// retried.
    pub tx_retries: u64,
}

/// Scheduler lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerState {
    /// Waiting for the start time or for more due bursts.
    InProgress,
    /// Every burst has been transmitted.
    Done,
}

/// Drives one replay of a [`Recording`].
#[derive(Debug)]
pub struct ReplayScheduler {
    /// Added to each recorded TSC to get its release TSC.
    delta: i128,
    next: usize,
    /// A burst that was partially accepted and must finish first.
    pending: Option<Burst>,
    pending_release: u64,
    stats: ReplayStats,
    port: PortId,
    /// Per-burst release lateness (cycles), when logging is enabled —
    /// the raw data behind §6's "evaluation of these bounds" (how close
    /// to the recorded times a replay actually releases).
    lateness_log: Option<Vec<u64>>,
}

impl ReplayScheduler {
    /// Plan a replay of `recording` on `port`, starting at wall-clock time
    /// `start_wall_ns` (which should be in the future; a past time replays
    /// immediately, late).
    pub fn new(
        recording: &Recording,
        port: PortId,
        start_wall_ns: u64,
        dp: &dyn Dataplane,
    ) -> Self {
        let now_ns = dp.wall_ns();
        let now_tsc = dp.tsc();
        let wait_cycles = dp.ns_to_cycles(start_wall_ns.saturating_sub(now_ns));
        let start_tsc = now_tsc + wait_cycles;
        let first = recording.first_tsc().unwrap_or(start_tsc);
        let delta = start_tsc as i128 - first as i128;
        ReplayScheduler {
            delta,
            next: 0,
            pending: None,
            pending_release: 0,
            stats: ReplayStats::default(),
            port,
            lateness_log: None,
        }
    }

    /// Record every burst's release lateness for post-hoc analysis (e.g.
    /// feeding `choir_core::metrics::DeltaHistogram`). Costs 8 bytes per
    /// burst.
    pub fn enable_lateness_log(&mut self) {
        self.lateness_log = Some(Vec::new());
    }

    /// The per-burst lateness samples (cycles), if logging was enabled.
    pub fn lateness_log(&self) -> Option<&[u64]> {
        self.lateness_log.as_deref()
    }

    /// Release TSC of burst `i`.
    fn release_tsc(&self, recording: &Recording, i: usize) -> u64 {
        (recording.burst(i).tsc as i128 + self.delta).max(0) as u64
    }

    /// Transmit every due burst; request a wake-up for the next one.
    ///
    /// Call repeatedly (on every wake) until [`SchedulerState::Done`].
    pub fn pump(&mut self, recording: &Recording, dp: &mut dyn Dataplane) -> SchedulerState {
        // Finish a partially-sent burst first: order must be preserved.
        if let Some(mut burst) = self.pending.take() {
            dp.tx_burst(self.port, &mut burst);
            if burst.is_empty() {
                self.finish_burst(dp.tsc());
            } else {
                self.stats.tx_retries += 1;
                self.pending = Some(burst);
                // NIC is backed up; ask to be woken immediately-ish.
                let now = dp.tsc();
                dp.request_wake_at_tsc(now + 1);
                return SchedulerState::InProgress;
            }
        }

        while self.next < recording.len() {
            let release = self.release_tsc(recording, self.next);
            let now = dp.tsc();
            if now < release {
                dp.request_wake_at_tsc(release);
                return SchedulerState::InProgress;
            }
            let mut burst = recording.burst(self.next).to_burst();
            let total = burst.len() as u64;
            let sent = dp.tx_burst(self.port, &mut burst) as u64;
            self.stats.packets_sent += sent;
            self.pending_release = release;
            if sent < total {
                self.stats.tx_retries += 1;
                self.pending = Some(burst);
                let now = dp.tsc();
                dp.request_wake_at_tsc(now + 1);
                return SchedulerState::InProgress;
            }
            self.finish_burst(dp.tsc());
        }
        SchedulerState::Done
    }

    fn finish_burst(&mut self, now_tsc: u64) {
        self.stats.bursts_sent += 1;
        let lateness = now_tsc.saturating_sub(self.pending_release);
        if lateness > 0 {
            self.stats.late_bursts += 1;
            self.stats.max_lateness_cycles = self.stats.max_lateness_cycles.max(lateness);
        }
        if let Some(log) = &mut self.lateness_log {
            log.push(lateness);
        }
        self.next += 1;
    }

    /// Packets counted so far. Once `Done`, equals the recording's total.
    pub fn stats(&self) -> ReplayStats {
        self.stats
    }

    /// Index of the next burst to transmit.
    pub fn position(&self) -> usize {
        self.next
    }

    /// True when every burst has been transmitted.
    pub fn is_done(&self, recording: &Recording) -> bool {
        self.pending.is_none() && self.next >= recording.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use choir_dpdk::{Mempool, PortStats};
    use choir_packet::Frame;

    /// A test dataplane with a manually-advanced TSC and a capacity-bounded
    /// sink that records (tsc, packets) per tx_burst call.
    struct TestPlane {
        pool: Mempool,
        now: u64,
        wake: Option<u64>,
        accept_per_call: usize,
        sent: Vec<(u64, usize)>,
    }

    impl TestPlane {
        fn new(accept_per_call: usize) -> Self {
            TestPlane {
                pool: Mempool::new("t", 1024),
                now: 0,
                wake: None,
                accept_per_call,
                sent: Vec::new(),
            }
        }
    }

    impl Dataplane for TestPlane {
        fn num_ports(&self) -> usize {
            1
        }
        fn mempool(&self) -> &Mempool {
            &self.pool
        }
        fn rx_burst(&mut self, _p: PortId, out: &mut Burst) -> usize {
            out.clear();
            0
        }
        fn tx_burst(&mut self, _p: PortId, burst: &mut Burst) -> usize {
            let n = burst.len().min(self.accept_per_call);
            burst.drain_front(n).for_each(drop);
            self.sent.push((self.now, n));
            n
        }
        fn tsc(&self) -> u64 {
            self.now
        }
        fn tsc_hz(&self) -> u64 {
            1_000_000_000
        }
        fn wall_ns(&self) -> u64 {
            self.now
        }
        fn request_wake_at_tsc(&mut self, tsc: u64) {
            self.wake = Some(self.wake.map_or(tsc, |w| w.min(tsc)));
        }
        fn stats(&self, _p: PortId) -> PortStats {
            PortStats::default()
        }
    }

    fn recording(pool: &Mempool, tscs: &[u64], per_burst: usize) -> Recording {
        let mut r = Recording::new();
        for &t in tscs {
            let pkts: Vec<_> = (0..per_burst)
                .map(|i| {
                    pool.alloc(Frame::new(Bytes::from(vec![i as u8; 60])))
                        .unwrap()
                })
                .collect();
            r.push_burst(t, pkts.iter());
        }
        r
    }

    #[test]
    fn bursts_release_at_recorded_offsets() {
        let mut dp = TestPlane::new(64);
        let rec = recording(&dp.pool.clone(), &[1000, 1500, 2700], 2);
        // Start the replay at wall 10_000: delta = 10_000 - 1000 = 9000.
        let mut sch = ReplayScheduler::new(&rec, 0, 10_000, &dp);
        assert_eq!(sch.pump(&rec, &mut dp), SchedulerState::InProgress);
        assert_eq!(dp.wake, Some(10_000));
        dp.now = 10_000;
        dp.wake = None;
        sch.pump(&rec, &mut dp);
        assert_eq!(dp.sent.len(), 1);
        assert_eq!(dp.wake, Some(10_500));
        dp.now = 10_500;
        sch.pump(&rec, &mut dp);
        dp.now = 11_700;
        let st = sch.pump(&rec, &mut dp);
        assert_eq!(st, SchedulerState::Done);
        assert_eq!(dp.sent, vec![(10_000, 2), (10_500, 2), (11_700, 2)]);
        assert_eq!(sch.stats().packets_sent, 6);
        assert_eq!(sch.stats().bursts_sent, 3);
        assert!(sch.is_done(&rec));
    }

    #[test]
    fn late_wake_transmits_all_due_bursts_and_counts_lateness() {
        let mut dp = TestPlane::new(64);
        let rec = recording(&dp.pool.clone(), &[0, 100, 200], 1);
        let mut sch = ReplayScheduler::new(&rec, 0, 1_000, &dp);
        // Sleep through everything: wake at 5000.
        dp.now = 5_000;
        let st = sch.pump(&rec, &mut dp);
        assert_eq!(st, SchedulerState::Done);
        assert_eq!(dp.sent.len(), 3);
        let s = sch.stats();
        assert_eq!(s.late_bursts, 3);
        assert!(s.max_lateness_cycles >= 3_800);
    }

    #[test]
    fn partial_tx_preserves_order_and_retries() {
        let mut dp = TestPlane::new(3); // NIC accepts 3 packets per call
        let rec = recording(&dp.pool.clone(), &[0], 8);
        let mut sch = ReplayScheduler::new(&rec, 0, 0, &dp);
        let mut guard = 0;
        loop {
            match sch.pump(&rec, &mut dp) {
                SchedulerState::Done => break,
                SchedulerState::InProgress => {
                    dp.now += 1;
                    guard += 1;
                    assert!(guard < 100, "scheduler wedged");
                }
            }
        }
        let total: usize = dp.sent.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 8);
        assert!(sch.stats().tx_retries >= 2);
        assert_eq!(sch.stats().bursts_sent, 1);
    }

    #[test]
    fn past_start_time_replays_immediately() {
        let mut dp = TestPlane::new(64);
        dp.now = 50_000;
        let rec = recording(&dp.pool.clone(), &[7_000], 4);
        let mut sch = ReplayScheduler::new(&rec, 0, 10, &dp); // in the past
        let st = sch.pump(&rec, &mut dp);
        assert_eq!(st, SchedulerState::Done);
        assert_eq!(sch.stats().packets_sent, 4);
    }

    #[test]
    fn empty_recording_is_immediately_done() {
        let mut dp = TestPlane::new(64);
        let rec = Recording::new();
        let mut sch = ReplayScheduler::new(&rec, 0, 100, &dp);
        assert_eq!(sch.pump(&rec, &mut dp), SchedulerState::Done);
        assert_eq!(sch.stats(), ReplayStats::default());
    }

    #[test]
    fn lateness_log_records_per_burst_release_error() {
        let mut dp = TestPlane::new(64);
        let rec = recording(&dp.pool.clone(), &[0, 100, 200, 300], 1);
        let mut sch = ReplayScheduler::new(&rec, 0, 1_000, &dp);
        sch.enable_lateness_log();
        // Wake exactly for the first two, 70 cycles late for the rest.
        dp.now = 1_000;
        sch.pump(&rec, &mut dp);
        dp.now = 1_100;
        sch.pump(&rec, &mut dp);
        dp.now = 1_270;
        sch.pump(&rec, &mut dp);
        dp.now = 1_300;
        assert_eq!(sch.pump(&rec, &mut dp), SchedulerState::Done);
        let log = sch.lateness_log().unwrap();
        assert_eq!(log, &[0, 0, 70, 0], "per-burst lateness as observed");
        // Disabled by default.
        let sch2 = ReplayScheduler::new(&rec, 0, 1_000, &dp);
        assert!(sch2.lateness_log().is_none());
    }

    #[test]
    fn relative_spacing_preserved_under_exact_wakes() {
        // The core fidelity property: replayed inter-burst spacing equals
        // recorded spacing when wakes are exact.
        let mut dp = TestPlane::new(64);
        let tscs: Vec<u64> = (0..20).map(|i| 1_000 + i * 285).collect();
        let rec = recording(&dp.pool.clone(), &tscs, 1);
        let mut sch = ReplayScheduler::new(&rec, 0, 100_000, &dp);
        loop {
            match sch.pump(&rec, &mut dp) {
                SchedulerState::Done => break,
                SchedulerState::InProgress => {
                    dp.now = dp.wake.take().expect("wake requested");
                }
            }
        }
        let times: Vec<u64> = dp.sent.iter().map(|&(t, _)| t).collect();
        for w in times.windows(2) {
            assert_eq!(w[1] - w[0], 285);
        }
        assert_eq!(sch.stats().late_bursts, 0);
    }
}
