//! Traffic patterns beyond plain CBR.
//!
//! The paper's evaluation uses constant-bit-rate streams, but the tools it
//! positions itself against generate richer traffic: MoonGen "can be
//! scripted to generate complex traffic patterns", Pktgen sweeps ranges
//! (§9). This module provides the standard shapes so Choir recordings can
//! be taken over realistic workloads:
//!
//! - [`Pattern::Cbr`] — fixed spacing (the paper's workload);
//! - [`Pattern::Poisson`] — exponentially distributed gaps at a target
//!   mean rate (classic open-loop traffic);
//! - [`Pattern::OnOff`] — bursts of back-to-back packets separated by
//!   idle periods (microburst-heavy workloads);
//! - [`Pattern::Imix`] — the conventional Internet mix of frame sizes
//!   (7:4:1 of 64/594/1518-byte frames) at a target bit rate.

use choir_packet::FrameSpec;

/// Deterministic inter-packet gap / frame-size generator.
#[derive(Debug, Clone)]
pub enum Pattern {
    /// Constant bit rate: every gap identical.
    Cbr(FrameSpec),
    /// Poisson arrivals: exponential gaps with the same *mean* rate as
    /// the embedded spec.
    Poisson(FrameSpec),
    /// `burst` back-to-back packets (at line-rate spacing), then an idle
    /// gap sized so the long-run average matches the spec's rate.
    OnOff {
        /// Frame/rate description for the long-run average.
        spec: FrameSpec,
        /// Packets per burst.
        burst: u32,
        /// Line rate used for intra-burst spacing, bits/s.
        line_rate_bps: u64,
    },
    /// IMIX frame-size mix at the given aggregate wire rate.
    Imix {
        /// Aggregate target rate, bits/s.
        rate_bps: u64,
    },
}

/// IMIX components: (frame length, weight).
pub const IMIX_MIX: [(usize, u32); 3] = [(64, 7), (594, 4), (1518, 1)];

/// A tiny deterministic PRNG (xorshift*) so patterns are reproducible
/// without threading a full RNG through the generator.
#[derive(Debug, Clone)]
pub struct PatternRng(u64);

impl PatternRng {
    /// Seeded stream.
    pub fn new(seed: u64) -> Self {
        PatternRng(seed | 1)
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Pattern {
    /// The gap (ps) to wait *before* packet `i`, and the frame length of
    /// packet `i`. Deterministic in `(self, rng-state, i)` — the same
    /// pattern instance replays identically, which is what lets a Choir
    /// recording of patterned traffic stay comparable across runs.
    pub fn next(&self, i: u64, rng: &mut PatternRng) -> (u64, usize) {
        match *self {
            Pattern::Cbr(spec) => (if i == 0 { 0 } else { spec.gap_ps() }, spec.frame_len),
            Pattern::Poisson(spec) => {
                if i == 0 {
                    return (0, spec.frame_len);
                }
                let u = rng.next_f64().max(f64::MIN_POSITIVE);
                let gap = -(spec.gap_ps() as f64) * u.ln();
                (gap.round() as u64, spec.frame_len)
            }
            Pattern::OnOff {
                spec,
                burst,
                line_rate_bps,
            } => {
                if i == 0 {
                    return (0, spec.frame_len);
                }
                let within = i % burst as u64;
                if within != 0 {
                    // Intra-burst: line-rate spacing.
                    (spec.serialization_ps(line_rate_bps), spec.frame_len)
                } else {
                    // Idle gap sized so the average rate holds:
                    // burst packets per (burst * mean_gap) of wall time.
                    let mean = spec.gap_ps();
                    let ser = spec.serialization_ps(line_rate_bps);
                    let idle = (mean * burst as u64).saturating_sub(ser * (burst as u64 - 1));
                    (idle, spec.frame_len)
                }
            }
            Pattern::Imix { rate_bps } => {
                // Pick a frame size by weight, then space it so the
                // long-run wire rate matches.
                let total: u32 = IMIX_MIX.iter().map(|&(_, w)| w).sum();
                let mut pick = (rng.next_u64() % total as u64) as u32;
                let mut len = IMIX_MIX[0].0;
                for &(l, w) in &IMIX_MIX {
                    if pick < w {
                        len = l;
                        break;
                    }
                    pick -= w;
                }
                let gap = if i == 0 {
                    0
                } else {
                    FrameSpec::new(len, rate_bps).gap_ps()
                };
                (gap, len)
            }
        }
    }

    /// The mean packet rate this pattern aims for, packets/second.
    pub fn mean_pps(&self) -> f64 {
        match *self {
            Pattern::Cbr(spec) | Pattern::Poisson(spec) | Pattern::OnOff { spec, .. } => {
                spec.pps()
            }
            Pattern::Imix { rate_bps } => {
                // Weighted mean wire bytes per frame.
                let total: u32 = IMIX_MIX.iter().map(|&(_, w)| w).sum();
                let mean_bits: f64 = IMIX_MIX
                    .iter()
                    .map(|&(l, w)| {
                        choir_packet::frame_wire_bytes(l) as f64 * 8.0 * w as f64
                    })
                    .sum::<f64>()
                    / total as f64;
                rate_bps as f64 / mean_bits
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec40g() -> FrameSpec {
        FrameSpec::new(1400, 40_000_000_000)
    }

    fn total_time(p: &Pattern, n: u64) -> (u64, Vec<usize>) {
        let mut rng = PatternRng::new(42);
        let mut t = 0u64;
        let mut lens = Vec::new();
        for i in 0..n {
            let (gap, len) = p.next(i, &mut rng);
            t += gap;
            lens.push(len);
        }
        (t, lens)
    }

    #[test]
    fn cbr_is_exact() {
        let p = Pattern::Cbr(spec40g());
        let (t, lens) = total_time(&p, 1_001);
        assert_eq!(t, 1_000 * 284_800);
        assert!(lens.iter().all(|&l| l == 1400));
    }

    #[test]
    fn poisson_matches_mean_rate() {
        let p = Pattern::Poisson(spec40g());
        let n = 200_000u64;
        let (t, _) = total_time(&p, n);
        let expected = (n - 1) * 284_800;
        let ratio = t as f64 / expected as f64;
        assert!((ratio - 1.0).abs() < 0.02, "ratio {ratio}");
        // And the gaps genuinely vary.
        let mut rng = PatternRng::new(42);
        let g1 = p.next(1, &mut rng).0;
        let g2 = p.next(2, &mut rng).0;
        assert_ne!(g1, g2);
    }

    #[test]
    fn onoff_preserves_average_rate_with_bursts() {
        let p = Pattern::OnOff {
            spec: spec40g(),
            burst: 16,
            line_rate_bps: 100_000_000_000,
        };
        let n = 16 * 1_000u64;
        let (t, _) = total_time(&p, n + 1);
        let expected = n * 284_800;
        let ratio = t as f64 / expected as f64;
        assert!((ratio - 1.0).abs() < 0.01, "ratio {ratio}");
        // Intra-burst gaps are serialization-spaced.
        let mut rng = PatternRng::new(1);
        let (g, _) = p.next(1, &mut rng);
        assert_eq!(g, spec40g().serialization_ps(100_000_000_000));
        // Burst boundary gap is much larger.
        let (idle, _) = p.next(16, &mut rng);
        assert!(idle > 10 * g, "idle {idle} vs intra {g}");
    }

    #[test]
    fn imix_mixes_sizes_in_ratio() {
        let p = Pattern::Imix {
            rate_bps: 10_000_000_000,
        };
        let (_, lens) = total_time(&p, 120_000);
        let count = |l: usize| lens.iter().filter(|&&x| x == l).count() as f64;
        let small = count(64);
        let mid = count(594);
        let big = count(1518);
        assert!((small / mid - 7.0 / 4.0).abs() < 0.1, "{small}/{mid}");
        assert!((mid / big - 4.0).abs() < 0.3, "{mid}/{big}");
    }

    #[test]
    fn patterns_are_deterministic() {
        let p = Pattern::Poisson(spec40g());
        let a = total_time(&p, 1_000);
        let b = total_time(&p, 1_000);
        assert_eq!(a, b);
        // A different seed differs.
        let mut rng = PatternRng::new(7);
        let mut t = 0;
        for i in 0..1_000 {
            t += p.next(i, &mut rng).0;
        }
        assert_ne!(t, a.0);
    }

    #[test]
    fn mean_pps_sane() {
        assert!((Pattern::Cbr(spec40g()).mean_pps() / 1e6 - 3.51).abs() < 0.05);
        let imix = Pattern::Imix {
            rate_bps: 10_000_000_000,
        };
        // IMIX mean frame ~ 370 bytes captured (~394 wire) -> ~3.2 Mpps at 10G.
        let pps = imix.mean_pps() / 1e6;
        assert!((2.5..4.0).contains(&pps), "pps {pps}");
    }
}
