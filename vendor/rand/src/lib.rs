//! Offline stand-in for the `rand` crate.
//!
//! Provides [`rngs::StdRng`], [`Rng`], and [`SeedableRng`] with the exact
//! method surface the workspace uses (`gen`, `gen_range`, `gen_bool`,
//! `seed_from_u64`, `from_seed`). The generator is xoshiro256++ seeded via
//! SplitMix64 — a different algorithm than upstream `StdRng` (ChaCha12),
//! but every property the workspace relies on holds: uniform output,
//! determinism for a given seed, and independent streams for different
//! seeds. Anything seeded is bit-reproducible across runs and platforms.

/// Sampling a value of type `T` from the uniform "standard" distribution
/// (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// The raw generator interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The user-facing generator interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// A uniform value of `T` (`f64` in `[0,1)`, integers over their full
    /// range, `bool` as a fair coin).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform value in `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Construction from seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: AsMut<[u8]> + Default;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded with SplitMix64 (the conventional
    /// xoshiro seeding procedure).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let v = splitmix64(&mut sm).to_le_bytes();
            chunk.copy_from_slice(&v[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 256-bit-state generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Uniform integer in `[0, bound)` by Lemire-style rejection (unbiased).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let sa: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
        // Degenerate inclusive range.
        assert_eq!(r.gen_range(3u64..=3), 3);
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut r = StdRng::seed_from_u64(3);
        let _ = r.gen_range(0u64..=u64::MAX);
    }

    #[test]
    fn mean_of_unit_samples_is_centered() {
        let mut r = StdRng::seed_from_u64(4);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = StdRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.2)).count();
        assert!((1_800..2_200).contains(&hits), "{hits}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.1));
    }
}
