//! # choir-bench
//!
//! The reproduction harness: paper targets, table/figure rendering, and
//! the plumbing shared by the `repro` binary and the Criterion benches.
//!
//! Every table and figure of the paper's evaluation has a regenerating
//! subcommand in `repro` (see `src/bin/repro.rs`); this library holds the
//! published numbers ([`paper`]) so each run prints paper-vs-measured
//! side by side, which is also how EXPERIMENTS.md is produced.

pub mod fmt;
pub mod paper;

use choir_testbed::{EnvKind, Experiment, ExperimentConfig, ExperimentOutput};

/// Run one environment at the given scale/seed.
pub fn run_env(kind: EnvKind, scale: f64, seed: u64) -> ExperimentOutput {
    Experiment::new(ExperimentConfig {
        profile: kind.profile(),
        scale,
        seed,
    })
    .run()
}

/// Run several environments concurrently, bounded by the host's
/// parallelism (each experiment is an independent simulation, so this is
/// embarrassingly parallel; on a laptop-class machine it turns the
/// nine-environment sweep into a few wall-clock batches).
///
/// Results come back in input order regardless of completion order.
pub fn run_envs_parallel(kinds: &[EnvKind], scale: f64, seed: u64) -> Vec<ExperimentOutput> {
    run_envs_parallel_with(kinds, scale, seed, None)
}

/// [`run_envs_parallel`] with an optional per-environment run-count
/// override.
pub fn run_envs_parallel_with(
    kinds: &[EnvKind],
    scale: f64,
    seed: u64,
    runs: Option<usize>,
) -> Vec<ExperimentOutput> {
    let run_one = |kind: EnvKind| {
        let mut profile = kind.profile();
        if let Some(r) = runs {
            profile.runs = r;
        }
        Experiment::new(ExperimentConfig {
            profile,
            scale,
            seed,
        })
        .run()
    };
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(kinds.len().max(1));
    if workers <= 1 {
        return kinds.iter().map(|&k| run_one(k)).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<ExperimentOutput>> = Vec::new();
    slots.resize_with(kinds.len(), || None);
    let slots = std::sync::Mutex::new(slots);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= kinds.len() {
                    break;
                }
                let out = run_one(kinds[i]);
                slots.lock().expect("slots mutex")[i] = Some(out);
            });
        }
    });
    slots
        .into_inner()
        .expect("slots mutex")
        .into_iter()
        .map(|o| o.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_sweep_matches_serial() {
        let kinds = [EnvKind::LocalSingle, EnvKind::FabricShared40];
        let par = run_envs_parallel(&kinds, 0.0005, 5);
        assert_eq!(par.len(), 2);
        for (kind, out) in kinds.iter().zip(&par) {
            let serial = run_env(*kind, 0.0005, 5);
            assert_eq!(out.trials, serial.trials, "{kind:?} must be order-stable");
        }
    }

    #[test]
    fn run_env_smoke() {
        let out = run_env(EnvKind::LocalSingle, 0.0005, 3);
        assert!(out.recorded_packets >= 50);
        assert_eq!(out.report.runs.len(), 4);
    }
}
