//! Per-mode observability counters of the streaming κ engine.
//!
//! The bounded and unbounded engines publish into disjoint counter
//! namespaces (`stream.bounded.*` / `stream.full.*`), so one process
//! running both modes must end with each namespace equal to its own
//! mode's measured outcome — no cross-mode bleed, and no zeroed
//! `snapshots` counter when a cadence was configured. This lives in its
//! own integration-test binary because the obs registry is a process
//! global: any other test enabling obs in the same process would
//! pollute the counts.

use choir::core::obs;
use choir::metrics::stream::{IncrementalComparison, Side, StreamConfig};
use choir::metrics::{KappaConfig, Trial};

fn jittered_pair(n: u64) -> (Trial, Trial) {
    let mut a = Trial::new();
    let mut b = Trial::new();
    for i in 0..n {
        a.push_tagged(0, 0, i, i * 1_000);
        // B sees the same packets with neighbours swapped pairwise, so
        // both engines do real reordering work.
        b.push_tagged(0, 0, i ^ 1, i * 1_000 + 37);
    }
    (a, b)
}

#[test]
fn stream_counters_are_namespaced_per_mode_and_match_outcomes() {
    let (a, b) = jittered_pair(400);
    obs::configure(&obs::ObsConfig {
        enabled: true,
        ring_capacity: 1024,
    });
    obs::reset();
    obs::set_enabled(true);

    let full_cfg = StreamConfig {
        lookahead: None,
        snapshot_every: 64,
        kappa: KappaConfig::paper(),
    };
    let mut eng = IncrementalComparison::new(full_cfg);
    eng.push_burst(Side::A, a.observations());
    eng.push_burst(Side::B, b.observations());
    let full = eng.finalize("obs-full");

    let bounded_cfg = StreamConfig {
        lookahead: Some(16),
        snapshot_every: 64,
        kappa: KappaConfig::paper(),
    };
    let mut eng = IncrementalComparison::new(bounded_cfg);
    eng.push_burst(Side::A, a.observations());
    eng.push_burst(Side::B, b.observations());
    let bounded = eng.finalize("obs-bounded");

    let snap = obs::snapshot();
    obs::set_enabled(false);

    // A cadence of 64 over 800 pushed observations must actually record
    // snapshots in both modes — the regression this guards is the
    // bounded finalize dropping its trail and reporting 0.
    assert!(!full.snapshots.is_empty(), "unbounded trail must be recorded");
    assert!(!bounded.snapshots.is_empty(), "bounded trail must be recorded");

    let total = (a.len() + b.len()) as u64;
    for (name, want) in [
        ("stream.full.packets_in", total),
        ("stream.full.matched", full.comparison.common as u64),
        ("stream.full.snapshots", full.snapshots.len() as u64),
        ("stream.full.peak_resident", full.peak_resident as u64),
        ("stream.bounded.packets_in", total),
        ("stream.bounded.matched", bounded.comparison.common as u64),
        ("stream.bounded.evicted", bounded.evicted as u64),
        ("stream.bounded.snapshots", bounded.snapshots.len() as u64),
        (
            "stream.bounded.missed_matches",
            bounded.missed_matches as u64,
        ),
        ("stream.bounded.seals", bounded.seals as u64),
        ("stream.bounded.forced_seals", bounded.forced_seals as u64),
        ("stream.bounded.peak_resident", bounded.peak_resident as u64),
    ] {
        assert_eq!(
            snap.counter(name),
            Some(want),
            "counter {name} must equal its mode's measured outcome"
        );
    }

    // Nothing published under the other mode's legacy unprefixed names.
    for stale in ["stream.packets_in", "stream.matched", "stream.snapshots"] {
        assert_eq!(snap.counter(stale), None, "unprefixed {stale} must be gone");
    }
}
