//! Wire-level arithmetic: how many bytes a frame really occupies on an
//! Ethernet link, and helpers for converting between rates, packet sizes
//! and inter-packet gaps.
//!
//! The paper quotes rates both in Gbps and Mpps (e.g. "40 Gbps stream of
//! 1,400-byte packets ... 3,518,826 packets per second", §6.1). Those two
//! numbers are only consistent once preamble, FCS and the inter-frame gap
//! are accounted for — this module is the single source of truth for that
//! conversion everywhere in the workspace.

/// Preamble + start-of-frame delimiter (8) + frame check sequence (4) +
/// minimum inter-frame gap (12): per-frame overhead bytes on the wire.
pub const WIRE_OVERHEAD_BYTES: usize = 8 + 4 + 12;

/// Minimum Ethernet frame size on the wire excluding preamble/IFG
/// (64 bytes including FCS).
pub const MIN_FRAME_WITH_FCS: usize = 64;

/// Bytes a captured frame of `captured_len` bytes (headers + payload,
/// no FCS) occupies on the wire, including all overhead and runt padding.
pub fn frame_wire_bytes(captured_len: usize) -> usize {
    // FCS is part of WIRE_OVERHEAD_BYTES' 4-byte term; pad short frames up
    // to the 64-byte minimum (captured + FCS >= 64).
    let with_fcs = captured_len + 4;
    let padded = with_fcs.max(MIN_FRAME_WITH_FCS);
    padded + (WIRE_OVERHEAD_BYTES - 4)
}

/// Description of a constant-bit-rate stream: frame size as captured
/// (excluding FCS) and target line rate in bits per second.
///
/// ```
/// use choir_packet::FrameSpec;
///
/// // The paper's workload: 1400-byte frames at 40 Gbps ~ 3.51 Mpps.
/// let spec = FrameSpec::new(1400, 40_000_000_000);
/// assert!((spec.pps() / 1e6 - 3.51).abs() < 0.05);
/// assert_eq!(spec.gap_ps(), 284_800);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameSpec {
    /// Captured frame length in bytes (Ethernet header through payload/tag).
    pub frame_len: usize,
    /// Target rate in bits per second *on the wire*.
    pub rate_bps: u64,
}

impl FrameSpec {
    /// A new spec; panics if either field is zero.
    pub fn new(frame_len: usize, rate_bps: u64) -> Self {
        assert!(frame_len > 0, "frame_len must be positive");
        assert!(rate_bps > 0, "rate_bps must be positive");
        FrameSpec { frame_len, rate_bps }
    }

    /// Wire bytes per frame including overhead.
    pub fn wire_bytes(&self) -> usize {
        frame_wire_bytes(self.frame_len)
    }

    /// Packets per second this spec yields at the configured rate.
    pub fn pps(&self) -> f64 {
        self.rate_bps as f64 / (self.wire_bytes() as f64 * 8.0)
    }

    /// Inter-packet gap (start-to-start) in picoseconds at the configured
    /// rate. This is the CBR spacing a generator should emit with.
    pub fn gap_ps(&self) -> u64 {
        // bits per frame / bits per second -> seconds; scale to ps.
        let bits = self.wire_bytes() as u128 * 8;
        ((bits * 1_000_000_000_000) / self.rate_bps as u128) as u64
    }

    /// Time to serialize one frame onto a link of `link_bps` bits/s, in ps.
    pub fn serialization_ps(&self, link_bps: u64) -> u64 {
        let bits = self.wire_bytes() as u128 * 8;
        ((bits * 1_000_000_000_000) / link_bps as u128) as u64
    }

    /// Number of whole packets emitted over `duration_ps` picoseconds.
    pub fn packets_in(&self, duration_ps: u64) -> u64 {
        duration_ps / self.gap_ps().max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_overhead_is_24() {
        assert_eq!(WIRE_OVERHEAD_BYTES, 24);
    }

    #[test]
    fn big_frame_wire_bytes() {
        // 1400-byte captured frame: +24 on the wire.
        assert_eq!(frame_wire_bytes(1400), 1424);
    }

    #[test]
    fn runt_frames_are_padded() {
        // A 40-byte captured frame pads to 64 with FCS, plus 20 more overhead.
        assert_eq!(frame_wire_bytes(40), 64 + 20);
        assert_eq!(frame_wire_bytes(60), 64 + 20);
        assert_eq!(frame_wire_bytes(61), 65 + 20);
    }

    #[test]
    fn paper_rate_sanity_40g_1400b() {
        // §6.1: 40 Gbps of 1400-byte packets ~= 3.51 Mpps.
        let spec = FrameSpec::new(1400, 40_000_000_000);
        let pps = spec.pps();
        assert!(
            (3.45e6..3.58e6).contains(&pps),
            "expected ~3.51 Mpps, got {pps}"
        );
    }

    #[test]
    fn paper_rate_sanity_80g_1400b() {
        // §7: 80 Gbps ~= 6.97 Mpps.
        let spec = FrameSpec::new(1400, 80_000_000_000);
        let pps = spec.pps();
        assert!((6.9e6..7.1e6).contains(&pps), "got {pps}");
    }

    #[test]
    fn paper_rate_sanity_100g_headline() {
        // §10: 100 Gbps corresponds to 8.9 Mpps (at ~1400-byte frames).
        let spec = FrameSpec::new(1380, 100_000_000_000);
        let pps = spec.pps();
        assert!((8.7e6..9.1e6).contains(&pps), "got {pps}");
    }

    #[test]
    fn gap_matches_pps() {
        let spec = FrameSpec::new(1400, 40_000_000_000);
        let gap = spec.gap_ps() as f64 / 1e12;
        let pps = spec.pps();
        let product = gap * pps;
        assert!((product - 1.0).abs() < 1e-6, "gap*pps = {product}");
    }

    #[test]
    fn serialization_time_100g() {
        let spec = FrameSpec::new(1400, 40_000_000_000);
        // 1424 bytes at 100 Gbps = 113.92 ns.
        assert_eq!(spec.serialization_ps(100_000_000_000), 113_920);
    }

    #[test]
    fn packets_in_duration() {
        let spec = FrameSpec::new(1400, 40_000_000_000);
        // 0.3 s at ~3.51 Mpps is ~1.05M packets (paper: 1,055,648).
        let n = spec.packets_in(300_000_000_000); // 0.3 s in ps
        assert!((1_040_000..1_070_000).contains(&n), "got {n}");
    }

    #[test]
    #[should_panic(expected = "frame_len must be positive")]
    fn zero_frame_len_panics() {
        FrameSpec::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "rate_bps must be positive")]
    fn zero_rate_panics() {
        FrameSpec::new(64, 0);
    }
}
