//! # choir-capture
//!
//! The recorder end of the paper's pipeline (the dpdkcap role): a
//! [`choir_dpdk::App`] that drains its receive port, keeps each packet's
//! identity and hardware receive timestamp, and assembles them into a
//! [`choir_core::metrics::Trial`] for the consistency analysis. It can
//! optionally retain whole frames for pcap export.

pub mod chunked;
pub mod meter;
pub mod source;

use choir_core::metrics::Trial;
use choir_core::obs;
use choir_core::replay::degrade::DegradationReport;
use choir_dpdk::{App, Burst, ControlMsg, Dataplane, PortId};
use choir_packet::pcap::PcapWriter;
use choir_packet::Frame;

pub use chunked::{IngestCursor, PcapChunkReader};
pub use meter::RateMeter;
pub use source::{drain_available, PcapSource, QueueHandle, QueueSource, Source, SourceError};

/// Recorder configuration.
#[derive(Debug, Clone, Copy)]
#[derive(Default)]
pub struct RecorderConfig {
    /// Port to capture on.
    pub port: PortId,
    /// Retain frames (needed for pcap export; costs memory).
    pub keep_frames: bool,
    /// Capture only Choir-tagged packets, ignoring control-plane chatter
    /// (PTP, ARP-ish noise) sharing the link — the filter the paper's
    /// evaluation applies by defining packet identity via the trailer tag
    /// (§3).
    pub tagged_only: bool,
    /// When set, accumulate windowed pps/Gbps telemetry with this window
    /// length (ps) — the observation behind §7.1's "bounced between
    /// 35 Gbps and 50 Gbps".
    pub meter_window_ps: Option<u64>,
    /// Upper bound on retained frames when `keep_frames` is set. Once
    /// the bound is reached further frames are dropped from retention
    /// and counted ([`Recorder::frames_dropped`], `capture.ring_full`)
    /// instead of growing without limit — identity/timestamp capture
    /// into the trial is unaffected. `None` retains everything.
    pub max_frames: Option<usize>,
}


/// The recorder application. Capture is segmented into *trials*: call
/// [`Recorder::cut_trial`] (or send `ControlMsg::Custom(TRIAL_CUT)`)
/// between replay runs.
pub struct Recorder {
    cfg: RecorderConfig,
    current: Trial,
    frames: Vec<(u64, Frame)>,
    finished: Vec<Trial>,
    buf: Burst,
    untimestamped: u64,
    filtered: u64,
    frames_dropped: u64,
    meter: Option<RateMeter>,
}

/// `ControlMsg::Custom` value that cuts the current trial.
pub const TRIAL_CUT: u64 = 0x7452_4941_4C00_0001; // "tRIAL..1"

impl Recorder {
    /// A recorder with the given configuration.
    pub fn new(cfg: RecorderConfig) -> Self {
        Recorder {
            cfg,
            current: Trial::new(),
            frames: Vec::new(),
            finished: Vec::new(),
            buf: Burst::new(),
            untimestamped: 0,
            filtered: 0,
            frames_dropped: 0,
            meter: cfg.meter_window_ps.map(RateMeter::new),
        }
    }

    /// The windowed rate telemetry, if configured.
    pub fn meter(&self) -> Option<&RateMeter> {
        self.meter.as_ref()
    }

    /// Packets captured into the current (uncut) trial.
    pub fn current_len(&self) -> usize {
        self.current.len()
    }

    /// Packets that arrived without a hardware timestamp (should be zero
    /// on any simulated NIC; counted rather than panicking).
    pub fn untimestamped(&self) -> u64 {
        self.untimestamped
    }

    /// Untagged packets skipped by the `tagged_only` filter.
    pub fn filtered(&self) -> u64 {
        self.filtered
    }

    /// Frames dropped from retention because the
    /// [`RecorderConfig::max_frames`] bound was reached. The trial
    /// itself (identities + timestamps) still recorded them.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped
    }

    /// This recorder's graceful-degradation events, in the shared
    /// vocabulary `choir-testbed` aggregates into run reports.
    pub fn degradation_report(&self) -> DegradationReport {
        DegradationReport {
            capture_ring_full: self.frames_dropped,
            ..DegradationReport::default()
        }
    }

    /// End the current trial and start a new one. Empty trials are not
    /// recorded.
    pub fn cut_trial(&mut self) {
        if !self.current.is_empty() {
            let t = std::mem::take(&mut self.current);
            // Trial cuts happen between replay runs, never per packet, so
            // this is a safe place to publish capture-side accounting.
            if obs::is_enabled() {
                obs::event("capture.trial_cut", self.finished.len() as u64, t.len() as u64);
                obs::counter_inc("capture.trials_cut");
                obs::counter_add("capture.packets_recorded", t.len() as u64);
                obs::gauge_set("capture.packets_filtered", self.filtered);
                obs::gauge_set("capture.packets_untimestamped", self.untimestamped);
            }
            self.finished.push(t);
        }
    }

    /// All completed trials, cutting the current one first.
    pub fn take_trials(&mut self) -> Vec<Trial> {
        self.cut_trial();
        std::mem::take(&mut self.finished)
    }

    /// Write retained frames as a nanosecond pcap. Requires
    /// `keep_frames`; returns how many records were written.
    pub fn write_pcap<W: std::io::Write>(&self, out: W) -> std::io::Result<u64> {
        let mut w = PcapWriter::new(out)?;
        for (ts_ps, frame) in &self.frames {
            // Round to the nearest nanosecond, as the pcap module
            // documents — truncation would bias every IAT/latency delta
            // derived from an exported capture by up to 1 ns.
            w.write_record((ts_ps + 500) / 1_000, frame)?;
        }
        let n = w.records_written();
        w.finish()?;
        Ok(n)
    }

    /// Number of retained frames.
    pub fn frames_kept(&self) -> usize {
        self.frames.len()
    }
}

impl App for Recorder {
    fn on_wake(&mut self, dp: &mut dyn Dataplane) {
        loop {
            let mut buf = std::mem::take(&mut self.buf);
            let n = dp.rx_burst(self.cfg.port, &mut buf);
            for m in buf.drain() {
                if self.cfg.tagged_only && m.frame.tag().is_none() {
                    self.filtered += 1;
                    continue;
                }
                let Some(ts) = m.rx_ts_ps else {
                    self.untimestamped += 1;
                    continue;
                };
                self.current.push(m.frame.packet_id(), ts);
                if let Some(meter) = &mut self.meter {
                    meter.record(ts, m.frame.wire_len());
                }
                if self.cfg.keep_frames {
                    if self.cfg.max_frames.is_none_or(|cap| self.frames.len() < cap) {
                        self.frames.push((ts, m.frame.clone()));
                    } else {
                        // Retention ring full: drop the frame copy and
                        // count, instead of growing without bound (or,
                        // in a fixed-ring port, panicking). The trial
                        // keeps the packet's identity and timestamp.
                        self.frames_dropped += 1;
                        if obs::is_enabled() {
                            obs::counter_inc("capture.ring_full");
                        }
                    }
                }
            }
            self.buf = buf;
            if n == 0 {
                break;
            }
        }
    }

    fn on_control(&mut self, msg: &ControlMsg, _dp: &mut dyn Dataplane) {
        if matches!(msg, ControlMsg::Custom(v) if *v == TRIAL_CUT) {
            self.cut_trial();
        }
    }

    fn name(&self) -> &str {
        "choir-recorder"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use choir_dpdk::{Mbuf, Mempool, PortStats};
    use choir_packet::ChoirTag;
    use std::collections::VecDeque;

    struct RxPlane {
        pool: Mempool,
        rx: VecDeque<Mbuf>,
        alloc_failed: u64,
    }

    impl RxPlane {
        fn new() -> Self {
            Self::with_pool_capacity(1 << 12)
        }
        fn with_pool_capacity(cap: usize) -> Self {
            RxPlane {
                pool: Mempool::new("cap", cap),
                rx: VecDeque::new(),
                alloc_failed: 0,
            }
        }
        fn inject(&mut self, seq: u64, ts_ps: Option<u64>) {
            let mut buf = vec![0u8; 60];
            ChoirTag::new(1, 0, seq).stamp_trailer(&mut buf);
            // An exhausted pool drops the arrival and counts it, like a
            // real rx path out of descriptors — never panics.
            match self.pool.alloc(Frame::new(Bytes::from(buf))) {
                Ok(mut m) => {
                    m.rx_ts_ps = ts_ps;
                    self.rx.push_back(m);
                }
                Err(_) => self.alloc_failed += 1,
            }
        }
    }

    impl Dataplane for RxPlane {
        fn num_ports(&self) -> usize {
            1
        }
        fn mempool(&self) -> &Mempool {
            &self.pool
        }
        fn rx_burst(&mut self, _p: PortId, out: &mut Burst) -> usize {
            out.clear();
            let mut n = 0;
            while n < choir_dpdk::MAX_BURST {
                match self.rx.pop_front() {
                    Some(m) => match out.push(m) {
                        Ok(()) => n += 1,
                        // Full burst: leave the packet queued for the
                        // next call rather than panicking.
                        Err(m) => {
                            self.rx.push_front(m);
                            break;
                        }
                    },
                    None => break,
                }
            }
            n
        }
        fn tx_burst(&mut self, _p: PortId, _b: &mut Burst) -> usize {
            0
        }
        fn tsc(&self) -> u64 {
            0
        }
        fn tsc_hz(&self) -> u64 {
            1_000_000_000
        }
        fn wall_ns(&self) -> u64 {
            0
        }
        fn request_wake_at_tsc(&mut self, _t: u64) {}
        fn stats(&self, _p: PortId) -> PortStats {
            PortStats::default()
        }
    }

    #[test]
    fn captures_ids_and_timestamps_in_order() {
        let mut dp = RxPlane::new();
        let mut r = Recorder::new(RecorderConfig::default());
        for i in 0..5 {
            dp.inject(i, Some(1_000 + i * 285));
        }
        r.on_wake(&mut dp);
        assert_eq!(r.current_len(), 5);
        let trials = r.take_trials();
        assert_eq!(trials.len(), 1);
        let t = &trials[0];
        assert_eq!(t.len(), 5);
        assert!(t.is_time_ordered());
        assert_eq!(t.time(0), 1_000);
        assert_eq!(t.time(4), 1_000 + 4 * 285);
        let (replayer, _, seq) = t.id(2).tag_fields().unwrap();
        assert_eq!((replayer, seq), (1, 2));
    }

    #[test]
    fn trial_cut_segments_runs() {
        let mut dp = RxPlane::new();
        let mut r = Recorder::new(RecorderConfig::default());
        dp.inject(0, Some(10));
        dp.inject(1, Some(20));
        r.on_wake(&mut dp);
        r.on_control(&ControlMsg::Custom(TRIAL_CUT), &mut dp);
        dp.inject(0, Some(12));
        dp.inject(1, Some(22));
        r.on_wake(&mut dp);
        let trials = r.take_trials();
        assert_eq!(trials.len(), 2);
        assert_eq!(trials[0].len(), 2);
        assert_eq!(trials[1].len(), 2);
    }

    #[test]
    fn empty_trials_are_skipped() {
        let mut dp = RxPlane::new();
        let mut r = Recorder::new(RecorderConfig::default());
        r.cut_trial();
        r.cut_trial();
        dp.inject(0, Some(5));
        r.on_wake(&mut dp);
        assert_eq!(r.take_trials().len(), 1);
    }

    #[test]
    fn tagged_only_filter_skips_untagged_traffic() {
        let mut dp = RxPlane::new();
        let mut r = Recorder::new(RecorderConfig {
            tagged_only: true,
            ..RecorderConfig::default()
        });
        dp.inject(0, Some(10));
        // An untagged frame on the same link (e.g. PTP chatter).
        let mut m = dp
            .pool
            .alloc(Frame::new(Bytes::from(vec![0u8; 40])))
            .unwrap();
        m.rx_ts_ps = Some(20);
        dp.rx.push_back(m);
        dp.inject(1, Some(30));
        r.on_wake(&mut dp);
        assert_eq!(r.current_len(), 2);
        assert_eq!(r.filtered(), 1);
    }

    #[test]
    fn untimestamped_counted_not_captured() {
        let mut dp = RxPlane::new();
        let mut r = Recorder::new(RecorderConfig::default());
        dp.inject(0, None);
        dp.inject(1, Some(7));
        r.on_wake(&mut dp);
        assert_eq!(r.untimestamped(), 1);
        assert_eq!(r.current_len(), 1);
    }

    #[test]
    fn other_control_messages_ignored() {
        let mut dp = RxPlane::new();
        let mut r = Recorder::new(RecorderConfig::default());
        dp.inject(0, Some(5));
        r.on_wake(&mut dp);
        r.on_control(&ControlMsg::StartRecord, &mut dp);
        r.on_control(&ControlMsg::Custom(999), &mut dp);
        assert_eq!(r.current_len(), 1, "trial must not be cut");
    }

    #[test]
    fn pcap_export_roundtrip() {
        let mut dp = RxPlane::new();
        let mut r = Recorder::new(RecorderConfig {
            keep_frames: true,
            ..RecorderConfig::default()
        });
        for i in 0..3 {
            dp.inject(i, Some(i * 1_000_000));
        }
        r.on_wake(&mut dp);
        assert_eq!(r.frames_kept(), 3);
        let mut out = Vec::new();
        let n = r.write_pcap(&mut out).unwrap();
        assert_eq!(n, 3);
        let recs = choir_packet::pcap::parse_pcap(&out).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[2].ts_ns, 2_000);
        let trial = Trial::from_pcap_records(&recs);
        assert_eq!(trial.len(), 3);
    }

    #[test]
    fn meter_tracks_windowed_rate() {
        let mut dp = RxPlane::new();
        let mut r = Recorder::new(RecorderConfig {
            meter_window_ps: Some(1_000_000),
            ..RecorderConfig::default()
        });
        for i in 0..10 {
            dp.inject(i, Some(i * 200_000)); // 5 pkts per 1 us window
        }
        r.on_wake(&mut dp);
        let m = r.meter().unwrap();
        assert_eq!(m.len(), 2);
        assert!(m.pps(0) > 0.0);
        let (_, mean, _) = m.bps_summary();
        assert!(mean > 0.0);
    }

    #[test]
    fn bounded_retention_drops_and_counts_instead_of_growing() {
        let mut dp = RxPlane::new();
        let mut r = Recorder::new(RecorderConfig {
            keep_frames: true,
            max_frames: Some(2),
            ..RecorderConfig::default()
        });
        for i in 0..5 {
            dp.inject(i, Some(10 + i));
        }
        r.on_wake(&mut dp);
        assert_eq!(r.frames_kept(), 2);
        assert_eq!(r.frames_dropped(), 3);
        assert_eq!(r.current_len(), 5, "trial capture unaffected by the bound");
        let d = r.degradation_report();
        assert_eq!(d.capture_ring_full, 3);
        assert!(!d.is_clean());
        // The bounded retention still exports a valid (short) pcap.
        let mut out = Vec::new();
        assert_eq!(r.write_pcap(&mut out).unwrap(), 2);
    }

    #[test]
    fn undersized_pool_completes_run_instead_of_panicking() {
        let mut dp = RxPlane::with_pool_capacity(4);
        let mut r = Recorder::new(RecorderConfig::default());
        for i in 0..10 {
            dp.inject(i, Some(100 * (i + 1)));
        }
        assert_eq!(dp.alloc_failed, 6);
        r.on_wake(&mut dp);
        assert_eq!(r.current_len(), 4);
        let trials = r.take_trials();
        assert_eq!(trials.len(), 1);
        assert!(trials[0].is_time_ordered());
    }

    #[test]
    fn frames_not_kept_by_default() {
        let mut dp = RxPlane::new();
        let mut r = Recorder::new(RecorderConfig::default());
        dp.inject(0, Some(5));
        r.on_wake(&mut dp);
        assert_eq!(r.frames_kept(), 0);
    }
}
