//! Per-node clocks: TSC, PTP-disciplined wall time, and NIC receive
//! timestamp models.
//!
//! The paper's replay fidelity rests on three clock properties it
//! discusses explicitly:
//!
//! - TSC frequencies are *constant* ("Given constant TSC frequencies
//!   (which for our implementation, FABRIC nodes have)", §4) but differ
//!   slightly from nominal — a ppb-scale calibration error that shows up
//!   as slow latency drift between runs.
//! - PTP synchronizes nodes "to within 10s of nanoseconds" (§6.2); the
//!   residual offset differs per run, which is exactly what causes the
//!   dual-replayer burst interleaving.
//! - NIC receive timestamps differ by hardware: the local Intel E810
//!   "uses realtime HW timestamps" while FABRIC's ConnectX-6 "uses HW
//!   clock timestamps converted to ns by sampling the HW clock" (§8.1).

use crate::rng::{DetRng, Jitter};
use crate::time::PS_PER_SEC;

/// A node's CPU clock: TSC plus PTP-disciplined system time.
#[derive(Debug, Clone)]
pub struct NodeClock {
    /// Nominal TSC frequency in Hz.
    pub tsc_hz: u64,
    /// TSC value at simulation time zero (nodes boot at different times).
    pub tsc_offset: u64,
    /// Actual-vs-nominal frequency error, in parts per billion. The
    /// *actual* frequency is `tsc_hz * (1 + ppb/1e9)`.
    pub freq_error_ppb: i64,
    /// PTP discipline state.
    pub ptp: PtpModel,
}

impl NodeClock {
    /// An ideal clock: exact frequency, zero offsets.
    pub fn ideal(tsc_hz: u64) -> Self {
        NodeClock {
            tsc_hz,
            tsc_offset: 0,
            freq_error_ppb: 0,
            ptp: PtpModel::perfect(),
        }
    }

    /// TSC reading at simulation time `t_ps`.
    pub fn tsc_at(&self, t_ps: u64) -> u64 {
        let cycles = (t_ps as u128)
            .saturating_mul(self.tsc_hz as u128)
            .saturating_mul((1_000_000_000i64 + self.freq_error_ppb) as u128)
            / (PS_PER_SEC as u128 * 1_000_000_000u128);
        self.tsc_offset + cycles as u64
    }

    /// Inverse of [`NodeClock::tsc_at`]: earliest simulation time at which
    /// the TSC reads at least `tsc`.
    pub fn time_of_tsc(&self, tsc: u64) -> u64 {
        let cycles = tsc.saturating_sub(self.tsc_offset) as u128;
        let num = cycles * PS_PER_SEC as u128 * 1_000_000_000u128;
        let den = self.tsc_hz as u128 * (1_000_000_000i64 + self.freq_error_ppb) as u128;
        num.div_ceil(den) as u64
    }

    /// PTP wall-clock reading in nanoseconds at simulation time `t_ps`.
    /// True time plus this node's current synchronization error. The ps
    /// reading rounds to the nearest ns (matching how the PTP offset is
    /// already rounded) instead of flooring away sub-ns residue.
    pub fn wall_ns_at(&self, t_ps: u64) -> u64 {
        let true_ns = ((t_ps + 500) / 1_000) as i64;
        (true_ns + self.ptp.offset_ns_at(t_ps)).max(0) as u64
    }
}

/// PTP synchronization error: a per-run constant offset plus a slow linear
/// drift (the servo chases the grandmaster; between corrections the error
/// ramps).
#[derive(Debug, Clone)]
pub struct PtpModel {
    /// Offset from true time at t = 0, in nanoseconds.
    pub offset_ns: i64,
    /// Residual drift in nanoseconds per second.
    pub drift_ns_per_s: f64,
}

impl PtpModel {
    /// Perfect synchronization.
    pub fn perfect() -> Self {
        PtpModel {
            offset_ns: 0,
            drift_ns_per_s: 0.0,
        }
    }

    /// Sample a realistic sync state: offset ~ N(0, sigma_offset_ns),
    /// drift ~ N(0, sigma_drift).
    pub fn sampled(rng: &mut DetRng, sigma_offset_ns: f64, sigma_drift_ns_per_s: f64) -> Self {
        PtpModel {
            offset_ns: (sigma_offset_ns * rng.std_normal()).round() as i64,
            drift_ns_per_s: sigma_drift_ns_per_s * rng.std_normal(),
        }
    }

    /// Synchronization error at simulation time `t_ps`, in nanoseconds.
    pub fn offset_ns_at(&self, t_ps: u64) -> i64 {
        let secs = t_ps as f64 / PS_PER_SEC as f64;
        self.offset_ns + (self.drift_ns_per_s * secs).round() as i64
    }
}

/// NIC receive-timestamping behaviour.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum TimestampModel {
    /// Intel E810 style: a hardware realtime clock; error is small white
    /// noise plus nanosecond quantization.
    HwRealtime {
        /// Per-packet stamping noise.
        noise: Jitter,
    },
    /// ConnectX style: a free-running hardware clock sampled and converted
    /// to nanoseconds; the conversion introduces a periodic wander (the
    /// sampling servo ramps and corrects) on top of white noise.
    HwClockConverted {
        /// Per-packet stamping noise.
        noise: Jitter,
        /// Peak wander amplitude, in ps.
        wander_amplitude_ps: i64,
        /// Wander period, in ps.
        wander_period_ps: u64,
    },
}

impl TimestampModel {
    /// An exact timestamper (for tests).
    pub fn exact() -> Self {
        TimestampModel::HwRealtime {
            noise: Jitter::None,
        }
    }

    /// Produce the timestamp the NIC reports for a packet truly arriving
    /// at `t_ps`. Quantized to nanoseconds, as hardware reports.
    pub fn stamp(&self, t_ps: u64, rng: &mut DetRng) -> u64 {
        let raw = match self {
            TimestampModel::HwRealtime { noise } => t_ps as i64 + noise.sample(rng),
            TimestampModel::HwClockConverted {
                noise,
                wander_amplitude_ps,
                wander_period_ps,
            } => {
                let phase = (t_ps % wander_period_ps) as f64 / *wander_period_ps as f64;
                // Triangle wave in [-1, 1].
                let tri = 4.0 * (phase - 0.5).abs() - 1.0;
                t_ps as i64 + (*wander_amplitude_ps as f64 * tri) as i64 + noise.sample(rng)
            }
        };
        // Hardware reports nanoseconds.
        ((raw.max(0) as u64) / 1_000) * 1_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::{MS, NS, US};

    #[test]
    fn ideal_clock_is_exact() {
        let c = NodeClock::ideal(2_500_000_000);
        assert_eq!(c.tsc_at(0), 0);
        // 1 us = 2500 cycles at 2.5 GHz.
        assert_eq!(c.tsc_at(US), 2_500);
        // 1 ns = 2.5 cycles, truncated.
        assert_eq!(c.tsc_at(NS), 2);
    }

    #[test]
    fn tsc_roundtrip() {
        let c = NodeClock {
            tsc_hz: 2_500_000_000,
            tsc_offset: 77_000,
            freq_error_ppb: 120,
            ptp: PtpModel::perfect(),
        };
        for t in [0u64, 1_000, 123_456_789, 300 * MS] {
            let tsc = c.tsc_at(t);
            let back = c.time_of_tsc(tsc);
            // time_of_tsc returns the earliest time the TSC reaches that
            // value; re-reading must give the same TSC.
            assert_eq!(c.tsc_at(back), tsc, "t={t}");
            assert!(back <= t + 1_000, "back={back} t={t}");
        }
    }

    #[test]
    fn freq_error_accumulates() {
        let exact = NodeClock::ideal(3_000_000_000);
        let fast = NodeClock {
            freq_error_ppb: 1_000, // 1 ppm fast
            ..exact.clone()
        };
        let t = PS_PER_SEC; // 1 s
        let d = fast.tsc_at(t) - exact.tsc_at(t);
        // 1 ppm of 3e9 cycles = 3000 cycles.
        assert_eq!(d, 3_000);
    }

    #[test]
    fn wall_clock_applies_offset_and_drift() {
        let c = NodeClock {
            tsc_hz: 1_000_000_000,
            tsc_offset: 0,
            freq_error_ppb: 0,
            ptp: PtpModel {
                offset_ns: 40,
                drift_ns_per_s: -10.0,
            },
        };
        assert_eq!(c.wall_ns_at(0), 40);
        // After 1 s: 1e9 + 40 - 10.
        assert_eq!(c.wall_ns_at(PS_PER_SEC), 1_000_000_030);
    }

    #[test]
    fn wall_clock_rounds_to_nearest_ns() {
        // Regression: sub-ns residue used to floor, biasing wall-clock
        // readings (and replay-start alignment) by up to 1 ns.
        let c = NodeClock::ideal(1_000_000_000);
        assert_eq!(c.wall_ns_at(499), 0);
        assert_eq!(c.wall_ns_at(500), 1);
        assert_eq!(c.wall_ns_at(1_499), 1);
        assert_eq!(c.wall_ns_at(1_500), 2);
    }

    #[test]
    fn sampled_ptp_is_tens_of_ns_scale() {
        let mut rng = DetRng::derive(3, &["ptp"]);
        let mut max_abs = 0i64;
        for _ in 0..100 {
            let p = PtpModel::sampled(&mut rng, 30.0, 5.0);
            max_abs = max_abs.max(p.offset_ns.abs());
        }
        assert!(max_abs > 10, "offsets implausibly small: {max_abs}");
        assert!(max_abs < 200, "offsets implausibly large: {max_abs}");
    }

    #[test]
    fn exact_timestamper_quantizes_to_ns() {
        let ts = TimestampModel::exact();
        let mut rng = DetRng::derive(1, &["ts"]);
        assert_eq!(ts.stamp(1_234_567, &mut rng), 1_234_000);
        assert_eq!(ts.stamp(999, &mut rng), 0);
    }

    #[test]
    fn realtime_noise_stays_small() {
        let ts = TimestampModel::HwRealtime {
            noise: Jitter::Normal {
                mean: 0.0,
                sigma: 4.0 * NS as f64,
            },
        };
        let mut rng = DetRng::derive(1, &["ts2"]);
        let t = 1_000_000_000u64; // 1 ms
        for _ in 0..100 {
            let s = ts.stamp(t, &mut rng) as i64;
            assert!((s - t as i64).abs() < 30 * NS as i64);
        }
    }

    #[test]
    fn converted_model_wanders_periodically() {
        let ts = TimestampModel::HwClockConverted {
            noise: Jitter::None,
            wander_amplitude_ps: 20 * NS as i64,
            wander_period_ps: 100 * US,
        };
        let mut rng = DetRng::derive(1, &["ts3"]);
        // Peak of the triangle at phase 0 -> +amplitude; middle -> -amp.
        let mut at = |t: u64| ts.stamp(t, &mut rng) as i64 - t as i64;
        let peak = at(0);
        let trough = at(50 * US);
        assert!(peak > 15 * NS as i64, "peak {peak}");
        assert!(trough < -15 * NS as i64, "trough {trough}");
        // One full period later: same error again (within quantization).
        assert!((at(100 * US) - peak).abs() <= 1_000);
    }
}
