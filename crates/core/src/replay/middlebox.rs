//! The Choir transparent middlebox (paper §4–§5).
//!
//! "The core of Choir is introducing transparent middleboxes on links
//! between nodes. These middleboxes are transparent since they forward
//! traffic, unmodified, at line rate. … At the user's instruction, they
//! will begin to record replays. While recording, the middlebox remains
//! transparent."
//!
//! State machine:
//!
//! ```text
//!            StartRecord            StopRecord
//! Transparent ──────────▶ Recording ──────────▶ Transparent
//!      ▲                                             │
//!      │              replay finished     ScheduleReplay
//!      └───────────── Replaying ◀────────────────────┘
//! ```
//!
//! While replaying, forwarding continues (the middlebox stays in-situ);
//! the replay traffic is interleaved onto the same transmit port exactly
//! as the original Choir does.

use choir_dpdk::{App, Burst, ControlMsg, Dataplane, PortId};
use choir_packet::tag::{ChoirTag, TAG_LEN};
use choir_packet::Frame;

use crate::obs;

use super::control::{decode_control_pdu, encode_control_ack, is_control_frame, ControlPdu};
use super::degrade::DegradationReport;
use super::recording::{Recording, RollingRecorder};
use super::scheduler::{ReplayScheduler, ReplayStats, SchedulerState};

/// `ControlMsg::Custom` value freezing the rolling window into the
/// replay buffer (paper §4: "future work can add recording in a rolling
/// manner" — this is that mode's shutter button).
pub const SNAPSHOT_ROLLING: u64 = 0x534E_4150_0000_0001; // "SNAP..1"

/// Middlebox configuration.
#[derive(Debug, Clone, Copy)]
pub struct MiddleboxConfig {
    /// Port traffic arrives on.
    pub rx_port: PortId,
    /// Port traffic is forwarded (and replayed) out of.
    pub tx_port: PortId,
    /// This replay node's id, stamped into trailer tags.
    pub replayer_id: u16,
    /// Stamp each recorded packet with a unique Choir trailer (the paper's
    /// evaluation mode: "the packets were stamped with unique 16-byte tags
    /// in the replayer", §6).
    pub stamp_tags: bool,
    /// Intercept in-band control frames on the rx port (§5's two-interface
    /// deployment). Out-of-band control always works via `on_control`.
    pub in_band_control: bool,
    /// Bounded retries when the NIC accepts only part of a burst before
    /// the remainder is dropped (a transparent forwarder must not stall).
    pub tx_retries: u32,
    /// When set, the middlebox *continuously* records the most recent
    /// `n` packets while transparent (stand-by recording); a
    /// `ControlMsg::Custom(SNAPSHOT_ROLLING)` freezes that window into
    /// the replay buffer. `StartRecord`/`StopRecord` still work and take
    /// precedence while active.
    pub rolling_window: Option<usize>,
    /// Also forward the reverse direction (`tx_port` → `rx_port`),
    /// making the middlebox a full bridge between its "2 bridged
    /// interfaces" (paper §5). Reverse traffic is forwarded verbatim:
    /// never stamped, never recorded.
    pub bridge_reverse: bool,
    /// Mempool slots kept free for forwarding: when availability falls
    /// below this reserve, packets are still forwarded but no longer
    /// recorded (drop-from-recording-and-count) so a long record cannot
    /// starve the dataplane of buffers. The truncated recording remains
    /// internally consistent and replayable.
    pub pool_reserve: usize,
    /// Always stamp tags by copying the frame bytes, even when the
    /// storage is uniquely owned and could be written in place. This is
    /// the pre-optimization stamping path, kept so the throughput
    /// benchmarks can price the in-place trailer write against it; the
    /// stamped bytes are identical either way.
    pub copy_stamp: bool,
}

impl Default for MiddleboxConfig {
    fn default() -> Self {
        MiddleboxConfig {
            rx_port: 0,
            tx_port: 1,
            replayer_id: 0,
            stamp_tags: true,
            in_band_control: true,
            tx_retries: 2,
            rolling_window: None,
            bridge_reverse: false,
            pool_reserve: 128,
            copy_stamp: false,
        }
    }
}

/// Lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Transparent,
    Recording,
}

/// Forwarding-path counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForwardStats {
    /// Packets forwarded rx -> tx.
    pub forwarded: u64,
    /// Packets recorded.
    pub recorded: u64,
    /// In-band control frames intercepted.
    pub control_frames: u64,
    /// Packets dropped because the transmit ring stayed full.
    pub tx_dropped: u64,
    /// Packets forwarded but not recorded because the mempool fell
    /// below [`MiddleboxConfig::pool_reserve`].
    pub record_skipped: u64,
    /// Acks transmitted for sequenced in-band control frames.
    pub control_acks_sent: u64,
    /// Duplicate sequenced control deliveries suppressed (re-acked but
    /// not re-applied).
    pub control_duplicates: u64,
    /// Mempool allocations that failed on the capture/control path and
    /// were tolerated by dropping (e.g. an ack that could not be built
    /// under pool exhaustion; the controller's retransmit recovers it).
    pub alloc_failed: u64,
    /// Packets dropped because the staging burst was already at
    /// capacity when they arrived (a misbehaving rx plane overfilling
    /// `MAX_BURST`; the forwarder degrades instead of panicking).
    pub ring_full: u64,
}

/// The Choir middlebox application.
pub struct ChoirMiddlebox {
    cfg: MiddleboxConfig,
    state: State,
    recording: Recording,
    roller: Option<RollingRecorder>,
    scheduler: Option<ReplayScheduler>,
    seq: u64,
    rx_buf: Burst,
    stats: ForwardStats,
    last_replay_stats: Option<ReplayStats>,
    /// Sequence of the most recently applied reliable control frame;
    /// an identical sequence is re-acked but not re-applied
    /// (stop-and-wait makes exact-match dedupe sufficient).
    last_ctrl_seq: Option<u32>,
}

impl ChoirMiddlebox {
    /// A middlebox in transparent mode.
    pub fn new(cfg: MiddleboxConfig) -> Self {
        let roller = cfg.rolling_window.map(RollingRecorder::new);
        ChoirMiddlebox {
            cfg,
            state: State::Transparent,
            recording: Recording::new(),
            roller,
            scheduler: None,
            seq: 0,
            rx_buf: Burst::new(),
            stats: ForwardStats::default(),
            last_replay_stats: None,
            last_ctrl_seq: None,
        }
    }

    /// The rolling stand-by window, if configured.
    pub fn rolling(&self) -> Option<&RollingRecorder> {
        self.roller.as_ref()
    }

    /// The current recording (empty unless a record ran).
    pub fn recording(&self) -> &Recording {
        &self.recording
    }

    /// Forwarding-path counters.
    pub fn forward_stats(&self) -> ForwardStats {
        self.stats
    }

    /// This middlebox's graceful-degradation events, in the shared
    /// vocabulary `choir-testbed` aggregates into run reports.
    pub fn degradation_report(&self) -> DegradationReport {
        DegradationReport {
            record_skipped_packets: self.stats.record_skipped,
            forward_dropped_packets: self.stats.tx_dropped,
            control_duplicates: self.stats.control_duplicates,
            capture_alloc_failed: self.stats.alloc_failed,
            capture_ring_full: self.stats.ring_full,
            ..DegradationReport::default()
        }
    }

    /// Statistics of the most recently completed replay.
    pub fn last_replay_stats(&self) -> Option<ReplayStats> {
        self.last_replay_stats
    }

    /// True while a replay is scheduled or in progress.
    pub fn replay_active(&self) -> bool {
        self.scheduler.is_some()
    }

    /// True while recording.
    pub fn is_recording(&self) -> bool {
        self.state == State::Recording
    }

    /// Stamp a frame's trailer with the next tag, preserving its declared
    /// original length. The trailer overwrites the frame's reserved
    /// tailroom (the last [`TAG_LEN`] bytes, which [`FrameBuilder`] left
    /// as fill), so when this middlebox uniquely owns the frame storage
    /// — the hot path, every freshly received packet — the stamp is a
    /// 16-byte in-place write, no copy and no allocation. Only a frame
    /// whose storage is shared (a span-port clone, a replayed recording
    /// entry) pays a copy-on-write of its bytes.
    ///
    /// [`FrameBuilder`]: choir_packet::FrameBuilder
    fn stamp(&mut self, frame: &mut Frame) {
        let tag = ChoirTag::new(self.cfg.replayer_id, 0, self.seq);
        self.seq += 1;
        if frame.data.len() < TAG_LEN {
            // Too short to tag; forward as-is.
            return;
        }
        if !self.cfg.copy_stamp {
            if let Some(buf) = frame.data.try_unique_mut() {
                tag.stamp_trailer(buf);
                return;
            }
        }
        let mut data = frame.data.to_vec();
        tag.stamp_trailer(&mut data);
        *frame = Frame::truncated(bytes::Bytes::from(data), frame.orig_len() as u32);
    }

    fn handle_control(&mut self, msg: &ControlMsg, dp: &mut dyn Dataplane) {
        match *msg {
            ControlMsg::StartRecord => {
                self.recording.clear();
                self.seq = 0;
                self.state = State::Recording;
            }
            ControlMsg::StopRecord => {
                self.state = State::Transparent;
            }
            ControlMsg::ScheduleReplay { start_wall_ns } => {
                if !self.recording.is_empty() && self.scheduler.is_none() {
                    let sch =
                        ReplayScheduler::new(&self.recording, self.cfg.tx_port, start_wall_ns, dp);
                    self.scheduler = Some(sch);
                    // Kick the scheduler so it arms its first wake-up.
                    self.pump_replay(dp);
                }
            }
            ControlMsg::AbortReplay => {
                if let Some(s) = self.scheduler.take() {
                    self.last_replay_stats = Some(s.stats());
                }
            }
            ControlMsg::Custom(v) if v == SNAPSHOT_ROLLING => {
                if let Some(roller) = &self.roller {
                    self.recording = roller.snapshot();
                }
            }
            ControlMsg::Custom(_) => {}
        }
    }

    fn pump_replay(&mut self, dp: &mut dyn Dataplane) {
        if let Some(s) = self.scheduler.as_mut() {
            if s.pump(&self.recording, dp) == SchedulerState::Done {
                let s = self.scheduler.take().expect("scheduler present");
                self.last_replay_stats = Some(s.stats());
            }
        }
    }

    fn forward(&mut self, dp: &mut dyn Dataplane) {
        loop {
            let mut rx = std::mem::take(&mut self.rx_buf);
            let n = dp.rx_burst(self.cfg.rx_port, &mut rx);
            if n == 0 {
                self.rx_buf = rx;
                return;
            }
            let mut tx = Burst::new();
            for mut m in rx.drain() {
                if self.cfg.in_band_control && is_control_frame(&m.frame) {
                    self.stats.control_frames += 1;
                    // Intercepted, not forwarded. The staged burst is
                    // flushed first so a mid-burst StartRecord/StopRecord
                    // takes effect exactly at its in-band position.
                    match decode_control_pdu(&m.frame) {
                        Some(ControlPdu::Msg { msg, seq: None }) => {
                            self.flush_tx(&mut tx, dp);
                            self.handle_control(&msg, dp);
                        }
                        Some(ControlPdu::Msg {
                            msg,
                            seq: Some(seq),
                        }) => {
                            // Reliable delivery: always ack; apply only
                            // if this is not a retransmission of the
                            // last applied command.
                            self.send_ack(seq, &m.frame, dp);
                            if self.last_ctrl_seq == Some(seq) {
                                self.stats.control_duplicates += 1;
                            } else {
                                self.last_ctrl_seq = Some(seq);
                                self.flush_tx(&mut tx, dp);
                                self.handle_control(&msg, dp);
                            }
                        }
                        // Acks are addressed to a controller, not to us;
                        // malformed frames are dropped. Neither forwards.
                        Some(ControlPdu::Ack { .. }) | None => {}
                    }
                    continue;
                }
                if self.cfg.stamp_tags
                    && (self.state == State::Recording || self.roller.is_some())
                {
                    self.stamp(&mut m.frame);
                }
                // Bursts are bounded by rx_burst to MAX_BURST, so a full
                // staging burst means an upstream plane misbehaved; a
                // transparent forwarder must stay alive in-path, so the
                // packet is dropped and counted rather than panicking.
                if let Err(m) = tx.push(m) {
                    self.stats.ring_full += 1;
                    if obs::is_enabled() {
                        obs::counter_inc("capture.ring_full");
                    }
                    drop(m);
                }
            }
            self.rx_buf = rx;
            self.flush_tx(&mut tx, dp);
        }
    }

    /// Acknowledge a sequenced control frame back out the port it came
    /// in on, source/destination swapped from the original frame. An
    /// allocation or transmit failure is tolerated: the controller's
    /// retransmission recovers the lost ack.
    fn send_ack(&mut self, seq: u32, frame: &Frame, dp: &mut dyn Dataplane) {
        let Some(eth) = choir_packet::EthernetHeader::parse(&frame.data) else {
            return;
        };
        let ack = encode_control_ack(seq, eth.dst, eth.src);
        let Ok(mbuf) = dp.mempool().alloc(ack) else {
            self.stats.alloc_failed += 1;
            if obs::is_enabled() {
                obs::counter_inc("capture.alloc_fail");
            }
            return;
        };
        let mut burst = Burst::new();
        let _ = burst.push(mbuf);
        if dp.tx_burst(self.cfg.rx_port, &mut burst) == 1 {
            self.stats.control_acks_sent += 1;
        }
    }

    /// Transmit (and, while recording, record) the staged burst.
    fn flush_tx(&mut self, tx: &mut Burst, dp: &mut dyn Dataplane) {
        if tx.is_empty() {
            return;
        }
        let tsc = dp.tsc();
        // Holding recorded mbufs pins their pool slots; once the pool
        // drops below the reserve, forwarding continues but recording
        // degrades to drop-and-count (the recording stays consistent —
        // it is simply shorter than the traffic that passed).
        let may_record = dp.mempool().available() >= self.cfg.pool_reserve;
        if self.state == State::Recording {
            if may_record {
                self.recording.push_burst(tsc, tx.iter());
                self.stats.recorded += tx.len() as u64;
            } else {
                self.stats.record_skipped += tx.len() as u64;
            }
        } else if let Some(roller) = &mut self.roller {
            if may_record {
                roller.push_burst(tsc, tx.iter());
            } else {
                self.stats.record_skipped += tx.len() as u64;
            }
        }
        let mut attempts = 0;
        let total = tx.len() as u64;
        let mut sent = 0u64;
        loop {
            sent += dp.tx_burst(self.cfg.tx_port, tx) as u64;
            if tx.is_empty() || attempts >= self.cfg.tx_retries {
                break;
            }
            attempts += 1;
        }
        self.stats.forwarded += sent;
        if !tx.is_empty() {
            self.stats.tx_dropped += total - sent;
            tx.clear();
        }
    }

    /// Forward the reverse direction verbatim (bridge mode).
    fn forward_reverse(&mut self, dp: &mut dyn Dataplane) {
        loop {
            let mut rx = std::mem::take(&mut self.rx_buf);
            let n = dp.rx_burst(self.cfg.tx_port, &mut rx);
            if n == 0 {
                self.rx_buf = rx;
                return;
            }
            let total = rx.len() as u64;
            let mut sent = 0u64;
            let mut attempts = 0;
            loop {
                sent += dp.tx_burst(self.cfg.rx_port, &mut rx) as u64;
                if rx.is_empty() || attempts >= self.cfg.tx_retries {
                    break;
                }
                attempts += 1;
            }
            self.stats.forwarded += sent;
            if !rx.is_empty() {
                self.stats.tx_dropped += total - sent;
                rx.clear();
            }
            self.rx_buf = rx;
        }
    }
}

impl App for ChoirMiddlebox {
    fn on_wake(&mut self, dp: &mut dyn Dataplane) {
        self.pump_replay(dp);
        self.forward(dp);
        if self.cfg.bridge_reverse {
            self.forward_reverse(dp);
        }
    }

    fn on_control(&mut self, msg: &ControlMsg, dp: &mut dyn Dataplane) {
        self.handle_control(msg, dp);
    }

    fn name(&self) -> &str {
        "choir-middlebox"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::control::encode_control;
    use choir_dpdk::{Mbuf, Mempool, PortStats};
    use choir_packet::MacAddr;
    use std::collections::VecDeque;

    /// Two-port test plane: rx queue on port 0 (inject with `inject`),
    /// tx log on port 1, manual TSC.
    struct BridgePlane {
        pool: Mempool,
        now: u64,
        wake: Option<u64>,
        rx_q: VecDeque<Mbuf>,
        tx_log: Vec<(u64, Mbuf)>,
        /// Frames transmitted back out port 0 (control acks).
        ack_log: Vec<Mbuf>,
        tx_capacity_per_call: usize,
    }

    impl BridgePlane {
        fn new() -> Self {
            Self::with_pool_capacity(4096)
        }

        fn with_pool_capacity(cap: usize) -> Self {
            BridgePlane {
                pool: Mempool::new("mb", cap),
                now: 0,
                wake: None,
                rx_q: VecDeque::new(),
                tx_log: Vec::new(),
                ack_log: Vec::new(),
                tx_capacity_per_call: 64,
            }
        }

        fn inject(&mut self, frame: Frame) {
            let m = self.pool.alloc(frame).unwrap();
            self.rx_q.push_back(m);
        }

        fn inject_data(&mut self, n: usize) {
            let b = choir_packet::FrameBuilder::new(128, 1, 2);
            for _ in 0..n {
                self.inject(b.build_plain());
            }
        }
    }

    impl Dataplane for BridgePlane {
        fn num_ports(&self) -> usize {
            2
        }
        fn mempool(&self) -> &Mempool {
            &self.pool
        }
        fn rx_burst(&mut self, port: PortId, out: &mut Burst) -> usize {
            out.clear();
            if port != 0 {
                return 0;
            }
            let mut n = 0;
            while n < choir_dpdk::MAX_BURST {
                match self.rx_q.pop_front() {
                    Some(m) => {
                        out.push(m).unwrap();
                        n += 1;
                    }
                    None => break,
                }
            }
            n
        }
        fn tx_burst(&mut self, port: PortId, burst: &mut Burst) -> usize {
            if port == 0 {
                // The only legitimate reverse traffic here is control acks.
                let n = burst.len();
                self.ack_log.extend(burst.drain());
                return n;
            }
            assert_eq!(port, 1, "middlebox must tx on its tx port");
            let n = burst.len().min(self.tx_capacity_per_call);
            let now = self.now;
            for m in burst.drain_front(n) {
                self.tx_log.push((now, m));
            }
            n
        }
        fn tsc(&self) -> u64 {
            self.now
        }
        fn tsc_hz(&self) -> u64 {
            1_000_000_000
        }
        fn wall_ns(&self) -> u64 {
            self.now
        }
        fn request_wake_at_tsc(&mut self, tsc: u64) {
            self.wake = Some(self.wake.map_or(tsc, |w| w.min(tsc)));
        }
        fn stats(&self, _p: PortId) -> PortStats {
            PortStats::default()
        }
    }

    fn mb() -> ChoirMiddlebox {
        ChoirMiddlebox::new(MiddleboxConfig {
            replayer_id: 3,
            ..MiddleboxConfig::default()
        })
    }

    #[test]
    fn transparent_forwarding_passes_packets_unmodified() {
        let mut dp = BridgePlane::new();
        let mut app = mb();
        dp.inject_data(10);
        app.on_wake(&mut dp);
        assert_eq!(dp.tx_log.len(), 10);
        assert_eq!(app.forward_stats().forwarded, 10);
        // Not recording: packets untouched (no tags).
        assert!(dp.tx_log.iter().all(|(_, m)| m.frame.tag().is_none()));
        assert!(app.recording().is_empty());
    }

    #[test]
    fn recording_stamps_tags_and_holds_bursts() {
        let mut dp = BridgePlane::new();
        let mut app = mb();
        app.on_control(&ControlMsg::StartRecord, &mut dp);
        dp.inject_data(5);
        dp.now = 1_000;
        app.on_wake(&mut dp);
        app.on_control(&ControlMsg::StopRecord, &mut dp);

        assert!(app.recording().packets() == 5);
        assert_eq!(app.forward_stats().recorded, 5);
        // Forwarded packets carry sequential tags from replayer 3.
        let seqs: Vec<u64> = dp
            .tx_log
            .iter()
            .map(|(_, m)| m.frame.tag().unwrap().seq)
            .collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert!(dp
            .tx_log
            .iter()
            .all(|(_, m)| m.frame.tag().unwrap().replayer == 3));
        // Recording shares the transmitted frames (no copies beyond the
        // tag stamp).
        let rec = app.recording();
        assert_eq!(
            rec.burst(0).pkts[0].frame.data.as_ptr(),
            dp.tx_log[0].1.frame.data.as_ptr()
        );
    }

    #[test]
    fn stamping_is_in_place_for_uniquely_owned_frames() {
        let mut dp = BridgePlane::new();
        let mut app = mb();
        app.on_control(&ControlMsg::StartRecord, &mut dp);
        let b = choir_packet::FrameBuilder::new(128, 1, 2);
        let frame = b.build_plain();
        let original_ptr = frame.data.as_ptr();
        dp.inject(frame);
        app.on_wake(&mut dp);
        // The middlebox owned the frame storage uniquely (storage-folded
        // mbuf slot, one handle), so the stamp wrote the trailer into the
        // existing bytes — same allocation, no copy.
        assert_eq!(dp.tx_log[0].1.frame.data.as_ptr(), original_ptr);
        assert!(dp.tx_log[0].1.frame.tag().is_some());
    }

    #[test]
    fn stamping_copies_when_frame_storage_is_shared() {
        let mut dp = BridgePlane::new();
        let mut app = mb();
        app.on_control(&ControlMsg::StartRecord, &mut dp);
        let b = choir_packet::FrameBuilder::new(128, 1, 2);
        let frame = b.build_plain();
        // A second handle to the storage (a tap's retained view) forces
        // the copy-on-write path; the shared original must stay unstamped.
        let tap = frame.data.clone();
        let original_ptr = frame.data.as_ptr();
        dp.inject(frame);
        app.on_wake(&mut dp);
        assert_ne!(dp.tx_log[0].1.frame.data.as_ptr(), original_ptr);
        assert!(dp.tx_log[0].1.frame.tag().is_some());
        assert!(Frame::new(tap).tag().is_none());
    }

    #[test]
    fn replay_retransmits_identical_packets_at_offsets() {
        let mut dp = BridgePlane::new();
        let mut app = mb();
        // Record 3 packets at tsc 1000.
        app.on_control(&ControlMsg::StartRecord, &mut dp);
        dp.inject_data(3);
        dp.now = 1_000;
        app.on_wake(&mut dp);
        app.on_control(&ControlMsg::StopRecord, &mut dp);
        let recorded_ids: Vec<_> = dp
            .tx_log
            .iter()
            .map(|(_, m)| m.frame.packet_id())
            .collect();
        dp.tx_log.clear();

        // Schedule a replay at wall 50_000.
        app.on_control(
            &ControlMsg::ScheduleReplay {
                start_wall_ns: 50_000,
            },
            &mut dp,
        );
        assert!(app.replay_active());
        assert_eq!(dp.wake, Some(50_000));
        dp.now = 50_000;
        dp.wake = None;
        app.on_wake(&mut dp);
        assert!(!app.replay_active());
        let replay_ids: Vec<_> = dp
            .tx_log
            .iter()
            .map(|(_, m)| m.frame.packet_id())
            .collect();
        assert_eq!(replay_ids, recorded_ids, "replay must be identical");
        assert_eq!(dp.tx_log[0].0, 50_000);
        let st = app.last_replay_stats().unwrap();
        assert_eq!(st.packets_sent, 3);
        // Recording survives for repeat replays.
        assert_eq!(app.recording().packets(), 3);
    }

    #[test]
    fn repeat_replays_are_identical() {
        let mut dp = BridgePlane::new();
        let mut app = mb();
        app.on_control(&ControlMsg::StartRecord, &mut dp);
        dp.inject_data(4);
        dp.now = 100;
        app.on_wake(&mut dp);
        app.on_control(&ControlMsg::StopRecord, &mut dp);
        dp.tx_log.clear();

        let mut runs = Vec::new();
        for start in [10_000u64, 20_000, 30_000] {
            app.on_control(&ControlMsg::ScheduleReplay { start_wall_ns: start }, &mut dp);
            dp.now = start;
            app.on_wake(&mut dp);
            let ids: Vec<_> = dp
                .tx_log
                .drain(..)
                .map(|(_, m)| m.frame.packet_id())
                .collect();
            runs.push(ids);
        }
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }

    #[test]
    fn in_band_control_frames_are_intercepted() {
        let mut dp = BridgePlane::new();
        let mut app = mb();
        let src = MacAddr::local(9);
        let dst = MacAddr::local(3);
        dp.inject(encode_control(&ControlMsg::StartRecord, src, dst));
        dp.inject_data(2);
        dp.inject(encode_control(&ControlMsg::StopRecord, src, dst));
        dp.inject_data(1);
        app.on_wake(&mut dp);
        // Control frames not forwarded; 3 data packets were.
        assert_eq!(dp.tx_log.len(), 3);
        assert_eq!(app.forward_stats().control_frames, 2);
        // Only the 2 packets between start/stop were recorded+tagged.
        assert_eq!(app.recording().packets(), 2);
        assert!(dp.tx_log[0].1.frame.tag().is_some());
        assert!(dp.tx_log[1].1.frame.tag().is_some());
        assert!(dp.tx_log[2].1.frame.tag().is_none());
    }

    #[test]
    fn abort_replay_stops_and_reports() {
        let mut dp = BridgePlane::new();
        let mut app = mb();
        app.on_control(&ControlMsg::StartRecord, &mut dp);
        dp.inject_data(2);
        dp.now = 10;
        app.on_wake(&mut dp);
        app.on_control(&ControlMsg::StopRecord, &mut dp);
        dp.tx_log.clear();
        app.on_control(
            &ControlMsg::ScheduleReplay {
                start_wall_ns: 99_000,
            },
            &mut dp,
        );
        assert!(app.replay_active());
        app.on_control(&ControlMsg::AbortReplay, &mut dp);
        assert!(!app.replay_active());
        assert_eq!(app.last_replay_stats().unwrap().packets_sent, 0);
        // Time passes; nothing is replayed.
        dp.now = 200_000;
        app.on_wake(&mut dp);
        assert!(dp.tx_log.is_empty());
    }

    #[test]
    fn schedule_without_recording_is_a_noop() {
        let mut dp = BridgePlane::new();
        let mut app = mb();
        app.on_control(
            &ControlMsg::ScheduleReplay { start_wall_ns: 100 },
            &mut dp,
        );
        assert!(!app.replay_active());
    }

    #[test]
    fn tx_backpressure_drops_after_retries() {
        let mut dp = BridgePlane::new();
        dp.tx_capacity_per_call = 2;
        let mut app = ChoirMiddlebox::new(MiddleboxConfig {
            tx_retries: 0,
            ..MiddleboxConfig::default()
        });
        dp.inject_data(10);
        app.on_wake(&mut dp);
        // Each rx burst of 10 -> one tx call of 2 accepted, 8 dropped.
        assert_eq!(app.forward_stats().tx_dropped, 8);
        assert_eq!(dp.tx_log.len(), 2);
    }

    #[test]
    fn bridge_reverse_forwards_both_directions() {
        // BridgePlane only queues rx on port 0 and asserts tx on port 1;
        // build a two-direction plane inline.
        use std::collections::VecDeque;
        struct TwoWay {
            pool: Mempool,
            rx: [VecDeque<Mbuf>; 2],
            tx: [Vec<Mbuf>; 2],
        }
        impl Dataplane for TwoWay {
            fn num_ports(&self) -> usize {
                2
            }
            fn mempool(&self) -> &Mempool {
                &self.pool
            }
            fn rx_burst(&mut self, p: PortId, out: &mut Burst) -> usize {
                out.clear();
                let mut n = 0;
                while n < choir_dpdk::MAX_BURST {
                    match self.rx[p].pop_front() {
                        Some(m) => {
                            out.push(m).unwrap();
                            n += 1;
                        }
                        None => break,
                    }
                }
                n
            }
            fn tx_burst(&mut self, p: PortId, burst: &mut Burst) -> usize {
                let n = burst.len();
                for m in burst.drain() {
                    self.tx[p].push(m);
                }
                n
            }
            fn tsc(&self) -> u64 {
                0
            }
            fn tsc_hz(&self) -> u64 {
                1_000_000_000
            }
            fn wall_ns(&self) -> u64 {
                0
            }
            fn request_wake_at_tsc(&mut self, _t: u64) {}
            fn stats(&self, _p: PortId) -> PortStats {
                PortStats::default()
            }
        }

        let mut dp = TwoWay {
            pool: Mempool::new("2w", 256),
            rx: [VecDeque::new(), VecDeque::new()],
            tx: [Vec::new(), Vec::new()],
        };
        let b = choir_packet::FrameBuilder::new(128, 1, 2);
        for _ in 0..3 {
            dp.rx[0].push_back(dp.pool.alloc(b.build_plain()).unwrap());
        }
        for _ in 0..2 {
            dp.rx[1].push_back(dp.pool.alloc(b.build_plain()).unwrap());
        }
        let mut app = ChoirMiddlebox::new(MiddleboxConfig {
            bridge_reverse: true,
            in_band_control: false,
            ..MiddleboxConfig::default()
        });
        app.on_wake(&mut dp);
        assert_eq!(dp.tx[1].len(), 3, "forward direction");
        assert_eq!(dp.tx[0].len(), 2, "reverse direction");
        // Reverse traffic is never stamped.
        assert!(dp.tx[0].iter().all(|m| m.frame.tag().is_none()));
        assert_eq!(app.forward_stats().forwarded, 5);
    }

    #[test]
    fn rolling_mode_keeps_a_window_and_snapshots_into_replays() {
        let mut dp = BridgePlane::new();
        let mut app = ChoirMiddlebox::new(MiddleboxConfig {
            rolling_window: Some(6),
            in_band_control: false,
            ..MiddleboxConfig::default()
        });
        // Stream 20 packets through a transparent (stand-by) middlebox.
        for i in 0..20u64 {
            dp.inject_data(1);
            dp.now = i * 1_000;
            app.on_wake(&mut dp);
        }
        // Only the most recent 6 are held.
        assert_eq!(app.rolling().unwrap().packets(), 6);
        assert_eq!(app.rolling().unwrap().evicted(), 14);
        assert!(app.recording().is_empty(), "no snapshot yet");

        // Snapshot, then replay the window.
        app.on_control(&ControlMsg::Custom(SNAPSHOT_ROLLING), &mut dp);
        assert_eq!(app.recording().packets(), 6);
        dp.tx_log.clear();
        app.on_control(
            &ControlMsg::ScheduleReplay {
                start_wall_ns: 100_000,
            },
            &mut dp,
        );
        dp.now = 100_000;
        dp.wake = None;
        loop {
            app.on_wake(&mut dp);
            if !app.replay_active() {
                break;
            }
            dp.now = dp.wake.take().expect("scheduler requested a wake");
        }
        assert_eq!(dp.tx_log.len(), 6);
        // The replayed packets are the LAST six of the stream (tags 14..20).
        let seqs: Vec<u64> = dp
            .tx_log
            .iter()
            .map(|(_, m)| m.frame.tag().unwrap().seq)
            .collect();
        assert_eq!(seqs, vec![14, 15, 16, 17, 18, 19]);
    }

    #[test]
    fn rolling_mode_stamps_tags_while_transparent() {
        let mut dp = BridgePlane::new();
        let mut app = ChoirMiddlebox::new(MiddleboxConfig {
            rolling_window: Some(4),
            in_band_control: false,
            ..MiddleboxConfig::default()
        });
        dp.inject_data(3);
        app.on_wake(&mut dp);
        assert!(dp.tx_log.iter().all(|(_, m)| m.frame.tag().is_some()));
    }

    #[test]
    fn explicit_recording_takes_precedence_over_rolling() {
        let mut dp = BridgePlane::new();
        let mut app = ChoirMiddlebox::new(MiddleboxConfig {
            rolling_window: Some(100),
            in_band_control: false,
            ..MiddleboxConfig::default()
        });
        app.on_control(&ControlMsg::StartRecord, &mut dp);
        dp.inject_data(5);
        app.on_wake(&mut dp);
        app.on_control(&ControlMsg::StopRecord, &mut dp);
        // The explicit recording holds the packets; the roller was idle
        // during the explicit window.
        assert_eq!(app.recording().packets(), 5);
        assert_eq!(app.rolling().unwrap().packets(), 0);
    }

    #[test]
    fn sequenced_control_is_acked_and_deduplicated() {
        use crate::replay::control::{decode_control_pdu, encode_control_seq, ControlPdu};
        let mut dp = BridgePlane::new();
        let mut app = mb();
        let src = MacAddr::local(9);
        let dst = MacAddr::local(3);
        dp.inject(encode_control_seq(&ControlMsg::StartRecord, 7, src, dst));
        dp.inject_data(2);
        // A retransmitted StartRecord: must be re-acked but NOT re-applied
        // (re-applying would clear the recording and reset the sequence).
        dp.inject(encode_control_seq(&ControlMsg::StartRecord, 7, src, dst));
        dp.inject_data(1);
        app.on_wake(&mut dp);

        // Both copies acked, back out the rx port, addressed to the sender.
        assert_eq!(dp.ack_log.len(), 2);
        for m in &dp.ack_log {
            assert_eq!(
                decode_control_pdu(&m.frame),
                Some(ControlPdu::Ack { seq: 7 })
            );
            let eth = choir_packet::EthernetHeader::parse(&m.frame.data).unwrap();
            assert_eq!(eth.dst, src, "ack returns to the controller");
            assert_eq!(eth.src, dst);
        }
        let st = app.forward_stats();
        assert_eq!(st.control_acks_sent, 2);
        assert_eq!(st.control_duplicates, 1);
        // The command was applied exactly once: all 3 data packets landed
        // in one recording with an unbroken tag sequence.
        assert_eq!(app.recording().packets(), 3);
        let seqs: Vec<u64> = dp
            .tx_log
            .iter()
            .map(|(_, m)| m.frame.tag().unwrap().seq)
            .collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(app.degradation_report().control_duplicates, 1);
    }

    #[test]
    fn exhausted_pool_drops_ack_gracefully_and_counts() {
        use crate::replay::control::encode_control_seq;
        let mut dp = BridgePlane::with_pool_capacity(2);
        let mut app = mb();
        let src = MacAddr::local(9);
        let dst = MacAddr::local(3);
        dp.inject(encode_control_seq(&ControlMsg::StartRecord, 1, src, dst));
        // Pin the remaining slot so the ack allocation must fail: the run
        // completes anyway (the controller's retransmit recovers the ack).
        let _pin = dp
            .pool
            .alloc(choir_packet::FrameBuilder::new(64, 1, 2).build_plain())
            .unwrap();
        app.on_wake(&mut dp);
        assert_eq!(dp.ack_log.len(), 0, "no slot for the ack");
        let st = app.forward_stats();
        assert_eq!(st.alloc_failed, 1);
        assert_eq!(st.control_acks_sent, 0);
        // The command itself was still applied.
        assert!(app.is_recording());
        let d = app.degradation_report();
        assert_eq!(d.capture_alloc_failed, 1);
        assert!(!d.is_clean());
        assert!(d.total_events() >= 1);
    }

    #[test]
    fn pool_pressure_degrades_recording_but_not_forwarding() {
        let mut dp = BridgePlane::new();
        // Reserve larger than the whole pool: recording is always skipped.
        let mut app = ChoirMiddlebox::new(MiddleboxConfig {
            pool_reserve: usize::MAX,
            in_band_control: false,
            ..MiddleboxConfig::default()
        });
        app.on_control(&ControlMsg::StartRecord, &mut dp);
        dp.inject_data(5);
        app.on_wake(&mut dp);
        app.on_control(&ControlMsg::StopRecord, &mut dp);

        let st = app.forward_stats();
        assert_eq!(st.forwarded, 5, "forwarding is never sacrificed");
        assert_eq!(dp.tx_log.len(), 5);
        assert_eq!(st.recorded, 0);
        assert_eq!(st.record_skipped, 5);
        assert!(app.recording().is_empty(), "recording stays consistent");
        let report = app.degradation_report();
        assert_eq!(report.record_skipped_packets, 5);
        assert!(!report.is_clean());
    }

    #[test]
    fn restart_recording_resets_sequence() {
        let mut dp = BridgePlane::new();
        let mut app = mb();
        app.on_control(&ControlMsg::StartRecord, &mut dp);
        dp.inject_data(2);
        app.on_wake(&mut dp);
        app.on_control(&ControlMsg::StartRecord, &mut dp);
        dp.inject_data(2);
        app.on_wake(&mut dp);
        // Second recording starts over at seq 0.
        let rec = app.recording();
        assert_eq!(rec.packets(), 2);
        let first_tag = rec.burst(0).pkts[0].frame.tag().unwrap();
        assert_eq!(first_tag.seq, 0);
    }
}
