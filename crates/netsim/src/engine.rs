//! The discrete-event engine: nodes hosting [`App`]s, NIC ports, switches
//! and links, advanced by a picosecond-resolution event queue.
//!
//! Determinism: the queue orders events by `(time, insertion sequence)`,
//! every random draw comes from a component-labeled [`DetRng`] stream, and
//! apps run single-threaded — so a simulation is a pure function of
//! `(topology, seed, trial index)`. The integration tests assert this by
//! comparing whole captures (κ = 1 between same-seed runs).

use std::any::Any;
use std::collections::VecDeque;

use choir_dpdk::{App, Burst, ControlMsg, Dataplane, Mbuf, Mempool, PortId, PortStats, MAX_BURST};

use choir_obs as obs;

use crate::clock::NodeClock;
use crate::impair::{corrupt_frame, LinkImpairments};
use crate::nic::{NicRxModel, NicTxModel};
use crate::rng::{DetRng, Jitter};
use crate::switchdev::Switch;
use crate::wheel::{EventQueue, QueueKind};

/// Index of a node in the simulation.
pub type NodeId = usize;

/// Where a wire terminates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// A node's NIC port.
    NodePort(NodeId, PortId),
    /// A switch's port.
    SwitchPort(usize, usize),
    /// Nothing attached; packets are dropped.
    Unconnected,
    /// The near end of an inter-domain link whose far end may live in
    /// another [`Sim`] (another shard). The index points into the sim's
    /// remote-link table; bursts emitted here are either admitted locally
    /// (when this sim also hosts the acceptor — the serial build) or
    /// parked in the outbox for the shard coordinator to route.
    Remote(usize),
}

/// Global simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Master seed; all component streams derive from it.
    pub master_seed: u64,
    /// Trial index: processes that physically differ between replay runs
    /// (clock sync, jitter draws) re-roll per trial.
    pub trial: u64,
    /// Packet-buffer pool slots shared by all nodes.
    pub pool_slots: usize,
    /// Event-queue backend. [`QueueKind::Wheel`] is the production path;
    /// [`QueueKind::Heap`] is the reference the golden-capture tests
    /// compare against (identical pop order, so identical captures).
    pub queue: QueueKind,
    /// Coalesce contiguous wire bursts into single delivery events (see
    /// DESIGN.md §10 for the rules). Disable to run the per-packet event
    /// path — the pre-coalescing reference the throughput benchmarks
    /// compare against.
    pub coalesce: bool,
    /// Allocate a dedicated guard `Arc` per mbuf instead of folding slot
    /// accounting into the frame's storage refcount. Part of the
    /// pre-optimization reference path (see [`Mempool::set_guard_slots`]).
    pub guard_slot_alloc: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            master_seed: 0x00C4_0112,
            trial: 0,
            pool_slots: 1 << 22,
            queue: QueueKind::Wheel,
            coalesce: true,
            guard_slot_alloc: false,
        }
    }
}

/// Event-engine counters, surfaced next to experiment results so the
/// cost of a simulation (and how well burst coalescing worked) is
/// visible alongside what it measured.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events dispatched.
    pub events_processed: u64,
    /// High-water mark of the event-queue depth.
    pub queue_depth_peak: u64,
    /// Delivery events that carried a whole burst.
    pub coalesced_events: u64,
    /// Packets carried inside coalesced events.
    pub coalesced_packets: u64,
    /// Wire crossings that needed no arrival event at all: transmits
    /// into a single-feeder switch ingress enqueue on the egress queue
    /// eagerly at tx time (identical departure times, one event less
    /// per packet).
    pub wire_events_elided: u64,
    /// Inter-domain bursts admitted through the remote-link band (one per
    /// link message, counted at the destination).
    pub remote_bursts: u64,
    /// Packets carried inside remotely-admitted bursts.
    pub remote_packets: u64,
}

impl SimStats {
    /// Mean packets per coalesced delivery event (0 when none fired).
    pub fn packets_per_event(&self) -> f64 {
        if self.coalesced_events == 0 {
            0.0
        } else {
            self.coalesced_packets as f64 / self.coalesced_events as f64
        }
    }

    /// Fold another sim's counters into this one — the shard aggregator.
    ///
    /// Every summing counter is exact: each scheduled event dispatches in
    /// exactly one shard, so per-shard sums equal what one serial engine
    /// processing the union would count. `queue_depth_peak` is the one
    /// exception — shards hold disjoint subsets of the global backlog, so
    /// the honest aggregate is the max over shards (a lower bound on the
    /// serial peak), not a sum.
    pub fn merge(&mut self, other: &SimStats) {
        self.events_processed += other.events_processed;
        self.queue_depth_peak = self.queue_depth_peak.max(other.queue_depth_peak);
        self.coalesced_events += other.coalesced_events;
        self.coalesced_packets += other.coalesced_packets;
        self.wire_events_elided += other.wire_events_elided;
        self.remote_bursts += other.remote_bursts;
        self.remote_packets += other.remote_packets;
    }
}

/// [`App`] plus downcasting, so experiments can reach into their apps
/// after (or during) a run.
pub trait AppAny: App {
    /// `&mut self` as `Any` for downcasting.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: App + Any> AppAny for T {
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

enum Ev {
    AppWake(NodeId),
    AppControl(NodeId, ControlMsg),
    TxPull(NodeId, PortId),
    /// Wire arrival. The flag marks packets that already passed the
    /// destination link's impairment stage (re-scheduled deliveries must
    /// not be impaired twice).
    Deliver(Endpoint, Mbuf, bool),
    /// A contiguous wire burst arriving as ONE event: each packet keeps
    /// its own last-bit arrival time, and per-packet fates (drops,
    /// timestamps, RNG draws) are decided inside the event in arrival
    /// order. Never used for impaired links (those deliver per-packet so
    /// re-scheduled duplicates interleave in global time order).
    DeliverBurst(Endpoint, Vec<(u64, Mbuf)>),
    SwitchEgress(usize, usize),
}

/// A live receive tap (see [`Sim::set_rx_tap`]): called with the stamped
/// hardware rx timestamp and the packet, at ring admission.
pub type RxTap = Box<dyn FnMut(u64, &Mbuf)>;

/// One NIC port's runtime state.
struct PortRuntime {
    tx_model: NicTxModel,
    rx_model: NicRxModel,
    tx_queue: VecDeque<Mbuf>,
    /// A TxPull chain is armed (doorbells need not schedule another).
    tx_armed: bool,
    /// Wire occupied until this time (serializations may not overlap).
    wire_free_at: u64,
    /// When `Some`, this port is an SR-IOV VF: its transmissions share
    /// the physical wire identified by the group index, so several VFs
    /// serialize through one 100 Gbps pipe — the structural alternative
    /// to the statistical `SharedVfModel`.
    phys_group: Option<usize>,
    rx_queue: VecDeque<Mbuf>,
    /// Live receive tap: observes every packet that survives drop and
    /// ring admission, right after hardware timestamping and before it
    /// enters the rx ring — the hook the streaming κ engine attaches to
    /// score a run while the simulation executes.
    rx_tap: Option<RxTap>,
    peer: Endpoint,
    prop_ps: u64,
    stats: PortStats,
    /// Impairments applied to traffic arriving at this port.
    impair: LinkImpairments,
    tx_rng: DetRng,
    rx_rng: DetRng,
}

struct NodeRuntime {
    name: String,
    app: Option<Box<dyn AppAny>>,
    clock: NodeClock,
    ports: Vec<PortRuntime>,
    /// Earliest already-scheduled wake (dedup); cleared when it fires.
    wake_pending_at: Option<u64>,
    /// Extra wake-delivery delay (VM preemption model).
    wake_jitter: Jitter,
    wake_rng: DetRng,
}

struct SwitchRuntime {
    sw: Switch,
    /// Peer and propagation delay per switch port.
    peers: Vec<(Endpoint, u64)>,
    rng: DetRng,
    /// Per-ingress cache of [`Switch::single_feeder`], maintained by the
    /// topology mutators: when true (and coalescing is on), transmits
    /// into that ingress enqueue on the egress queues eagerly at tx time
    /// and the wire-arrival event is elided entirely.
    eager: Vec<bool>,
}

/// The queue-key band reserved for remote admissions. Normal events use
/// the monotonically-assigned `seq` counter, which stays far below this
/// bit for any realistic run — so at equal times every locally-scheduled
/// event sorts before every remote admission, in both the serial and the
/// sharded build.
const REMOTE_BAND: u64 = 1 << 62;

/// The stable cross-shard tie-break: remote admissions at the same time
/// order by `(link id, per-link message count)`. Both are layout
/// invariants — the count increments in link-message order, which equals
/// origin emission order — so captures cannot depend on shard count or
/// thread scheduling.
fn remote_key(link: u32, count: u64) -> u64 {
    debug_assert!(link < (1 << 22), "remote link id overflows key band");
    debug_assert!(count < (1 << 40), "remote link count overflows key band");
    REMOTE_BAND | ((link as u64) << 40) | count
}

/// Acceptor side of an inter-domain link registered in this sim.
struct RemoteIn {
    dest: Endpoint,
    /// Messages admitted on this link so far (the tie-break counter).
    count: u64,
}

/// A burst crossing an inter-domain link: the link's global id and the
/// packets with their (already propagated) wire-arrival times.
pub struct RemoteBurst {
    /// Global inter-domain link id (unique across the whole fleet).
    pub link: u32,
    /// Packets with last-bit arrival times at the far end.
    pub pkts: Vec<(u64, Mbuf)>,
}

/// The simulator.
pub struct Sim {
    cfg: SimConfig,
    now: u64,
    seq: u64,
    queue: EventQueue<Ev>,
    nodes: Vec<NodeRuntime>,
    switches: Vec<SwitchRuntime>,
    /// Shared physical-wire busy times for SR-IOV VF groups.
    phys_groups: Vec<u64>,
    pool: Mempool,
    /// Global link ids of outbound inter-domain links, indexed by the
    /// `Endpoint::Remote` payload.
    remote_out: Vec<u32>,
    /// Acceptors for inter-domain links terminating here, by link id.
    remote_in: std::collections::BTreeMap<u32, RemoteIn>,
    /// Bursts bound for links whose acceptor lives in another sim,
    /// awaiting collection by the shard coordinator.
    outbox: Vec<RemoteBurst>,
    events_processed: u64,
    coalesced_events: u64,
    coalesced_packets: u64,
    wire_events_elided: u64,
    remote_bursts: u64,
    remote_packets: u64,
}

impl Sim {
    /// A new, empty simulation.
    pub fn new(cfg: SimConfig) -> Self {
        let pool = Mempool::new("sim-pool", cfg.pool_slots);
        pool.set_guard_slots(cfg.guard_slot_alloc);
        let queue = EventQueue::new(cfg.queue);
        Sim {
            cfg,
            now: 0,
            seq: 0,
            queue,
            nodes: Vec::new(),
            switches: Vec::new(),
            phys_groups: Vec::new(),
            pool,
            remote_out: Vec::new(),
            remote_in: std::collections::BTreeMap::new(),
            outbox: Vec::new(),
            events_processed: 0,
            coalesced_events: 0,
            coalesced_packets: 0,
            wire_events_elided: 0,
            remote_bursts: 0,
            remote_packets: 0,
        }
    }

    /// Create a physical-NIC group: VF ports joined to it share one wire
    /// (their serializations interleave on a first-come basis, which is
    /// how SR-IOV contention physically arises).
    pub fn add_phys_nic(&mut self) -> usize {
        self.phys_groups.push(0);
        self.phys_groups.len() - 1
    }

    /// Join a port to a physical-NIC group.
    pub fn join_phys_nic(&mut self, node: NodeId, port: PortId, group: usize) {
        assert!(group < self.phys_groups.len(), "unknown phys group");
        self.nodes[node].ports[port].phys_group = Some(group);
    }

    /// Current simulation time in ps.
    pub fn now_ps(&self) -> u64 {
        self.now
    }

    /// The shared packet pool.
    pub fn pool(&self) -> &Mempool {
        &self.pool
    }

    /// Events handled so far (diagnostics).
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Event-engine counters (queue depth high-water mark, coalescing
    /// effectiveness).
    pub fn sim_stats(&self) -> SimStats {
        SimStats {
            events_processed: self.events_processed,
            queue_depth_peak: self.queue.depth_peak() as u64,
            coalesced_events: self.coalesced_events,
            coalesced_packets: self.coalesced_packets,
            wire_events_elided: self.wire_events_elided,
            remote_bursts: self.remote_bursts,
            remote_packets: self.remote_packets,
        }
    }

    /// Time of the earliest pending event, or `None` when idle. The shard
    /// coordinator probes this to compute the conservative horizon.
    pub fn next_event_time(&mut self) -> Option<u64> {
        self.queue.peek_time()
    }

    /// Add a node hosting `app`. `wake_jitter` models delivery lateness of
    /// wake-ups (VM preemption; use [`Jitter::None`] for bare metal).
    pub fn add_node(
        &mut self,
        name: &str,
        app: impl AppAny + 'static,
        clock: NodeClock,
        wake_jitter: Jitter,
    ) -> NodeId {
        let id = self.nodes.len();
        let wake_rng =
            DetRng::derive_indexed(self.cfg.master_seed, &["node", name, "wake"], self.cfg.trial);
        self.nodes.push(NodeRuntime {
            name: name.to_string(),
            app: Some(Box::new(app)),
            clock,
            ports: Vec::new(),
            wake_pending_at: None,
            wake_jitter,
            wake_rng,
        });
        id
    }

    /// Attach a NIC port to `node`; returns its [`PortId`].
    pub fn add_port(&mut self, node: NodeId, tx: NicTxModel, rx: NicRxModel) -> PortId {
        let name = self.nodes[node].name.clone();
        let pid = self.nodes[node].ports.len();
        let plabel = format!("port{pid}");
        let tx_rng = DetRng::derive_indexed(
            self.cfg.master_seed,
            &["node", &name, &plabel, "tx"],
            self.cfg.trial,
        );
        let rx_rng = DetRng::derive_indexed(
            self.cfg.master_seed,
            &["node", &name, &plabel, "rx"],
            self.cfg.trial,
        );
        self.nodes[node].ports.push(PortRuntime {
            tx_model: tx,
            rx_model: rx,
            tx_queue: VecDeque::new(),
            tx_armed: false,
            wire_free_at: 0,
            phys_group: None,
            rx_queue: VecDeque::new(),
            rx_tap: None,
            peer: Endpoint::Unconnected,
            prop_ps: 0,
            stats: PortStats::default(),
            impair: LinkImpairments::none(),
            tx_rng,
            rx_rng,
        });
        pid
    }

    /// Add a switch; returns its index.
    pub fn add_switch(&mut self, sw: Switch, name: &str) -> usize {
        let ports = sw.ports();
        let rng = DetRng::derive_indexed(self.cfg.master_seed, &["switch", name], self.cfg.trial);
        self.switches.push(SwitchRuntime {
            sw,
            peers: vec![(Endpoint::Unconnected, 0); ports],
            rng,
            eager: vec![true; ports],
        });
        self.switches.len() - 1
    }

    /// Connect a node port and a switch port with a link of `prop_ps`
    /// propagation delay (both directions).
    pub fn connect_node_switch(
        &mut self,
        node: NodeId,
        port: PortId,
        sw: usize,
        sport: usize,
        prop_ps: u64,
    ) {
        self.nodes[node].ports[port].peer = Endpoint::SwitchPort(sw, sport);
        self.nodes[node].ports[port].prop_ps = prop_ps;
        self.switches[sw].peers[sport] = (Endpoint::NodePort(node, port), prop_ps);
    }

    /// Connect two node ports directly (a cable).
    pub fn connect_nodes(
        &mut self,
        a: NodeId,
        ap: PortId,
        b: NodeId,
        bp: PortId,
        prop_ps: u64,
    ) {
        self.nodes[a].ports[ap].peer = Endpoint::NodePort(b, bp);
        self.nodes[a].ports[ap].prop_ps = prop_ps;
        self.nodes[b].ports[bp].peer = Endpoint::NodePort(a, ap);
        self.nodes[b].ports[bp].prop_ps = prop_ps;
    }

    /// Point a node port's transmit side at the near end of an
    /// inter-domain link. `link` is the link's globally-unique id across
    /// the whole fleet; `prop_ps` is the full inter-domain propagation
    /// delay (which becomes the shard lookahead). The far end is declared
    /// with [`Sim::connect_remote_in`] — in this same sim for a serial
    /// build, or in another shard's sim for a parallel one.
    pub fn connect_remote_out(&mut self, node: NodeId, port: PortId, link: u32, prop_ps: u64) {
        assert!(link < (1 << 22), "remote link id out of range");
        let idx = self.remote_out.len();
        self.remote_out.push(link);
        self.nodes[node].ports[port].peer = Endpoint::Remote(idx);
        self.nodes[node].ports[port].prop_ps = prop_ps;
    }

    /// Declare this sim the acceptor of inter-domain link `link`:
    /// admitted bursts are delivered to `dest` (a local switch ingress or
    /// node port). Each link has exactly one acceptor fleet-wide.
    pub fn connect_remote_in(&mut self, link: u32, dest: Endpoint) {
        assert!(link < (1 << 22), "remote link id out of range");
        let prev = self.remote_in.insert(link, RemoteIn { dest, count: 0 });
        assert!(prev.is_none(), "remote link {link} already has an acceptor");
    }

    /// Link ids this sim accepts (the coordinator builds its routing
    /// table from these).
    pub fn accepted_remote_links(&self) -> Vec<u32> {
        self.remote_in.keys().copied().collect()
    }

    /// Drain bursts bound for other shards. Empty in a serial build,
    /// where every link's acceptor is local and admission short-circuits.
    pub fn take_outbox(&mut self) -> Vec<RemoteBurst> {
        std::mem::take(&mut self.outbox)
    }

    /// Admit a burst arriving over inter-domain link `link` (called by
    /// the shard coordinator with bursts collected from other shards).
    ///
    /// # Panics
    /// Panics if this sim is not the link's registered acceptor.
    pub fn inject_remote(&mut self, link: u32, pkts: Vec<(u64, Mbuf)>) {
        assert!(
            self.remote_in.contains_key(&link),
            "remote link {link} has no acceptor here"
        );
        self.admit_remote(link, pkts);
    }

    /// Admit a link message: apply the same coalescing rules `emit_wire`
    /// would, but key the queued event in the remote band —
    /// `(time, link, per-link count)` — instead of consuming `seq`. The
    /// band key is identical whether admission happens inline (serial
    /// short-circuit) or at a shard barrier, which is what makes captures
    /// independent of the shard layout.
    fn admit_remote(&mut self, link: u32, mut pkts: Vec<(u64, Mbuf)>) {
        if pkts.is_empty() {
            return;
        }
        self.remote_bursts += 1;
        self.remote_packets += pkts.len() as u64;
        let dest = self.remote_in.get(&link).expect("acceptor checked").dest;
        let coalescible = self.cfg.coalesce
            && pkts.len() > 1
            && match dest {
                Endpoint::NodePort(n, p) => self.nodes[n].ports[p].impair.is_none(),
                _ => true,
            };
        if coalescible {
            let at = match dest {
                Endpoint::SwitchPort(..) => pkts.first().expect("non-empty").0,
                _ => pkts.last().expect("non-empty").0,
            };
            self.coalesced_events += 1;
            self.coalesced_packets += pkts.len() as u64;
            let key = self.next_remote_key(link);
            debug_assert!(at >= self.now, "remote admission into the past");
            self.queue.push(at.max(self.now), key, Ev::DeliverBurst(dest, pkts));
        } else {
            for (at, m) in pkts.drain(..) {
                let key = self.next_remote_key(link);
                debug_assert!(at >= self.now, "remote admission into the past");
                self.queue.push(at.max(self.now), key, Ev::Deliver(dest, m, false));
            }
        }
    }

    fn next_remote_key(&mut self, link: u32) -> u64 {
        let rin = self.remote_in.get_mut(&link).expect("acceptor checked");
        let c = rin.count;
        rin.count += 1;
        remote_key(link, c)
    }

    /// Install a forwarding entry on a switch.
    pub fn switch_map(&mut self, sw: usize, ingress: usize, egress: usize) {
        self.switches[sw].sw.map(ingress, egress);
        self.recompute_eager(sw);
    }

    /// Refresh the per-ingress single-feeder cache after a topology edit.
    fn recompute_eager(&mut self, sw: usize) {
        let s = &mut self.switches[sw];
        for i in 0..s.eager.len() {
            s.eager[i] = s.sw.single_feeder(i);
        }
    }

    /// Deliver an out-of-band control message to a node's app at `at_ps`.
    pub fn send_control(&mut self, node: NodeId, msg: ControlMsg, at_ps: u64) {
        self.schedule(at_ps, Ev::AppControl(node, msg));
    }

    /// Schedule an app wake at `at_ps` (e.g. to start a generator).
    pub fn wake_app(&mut self, node: NodeId, at_ps: u64) {
        self.schedule(at_ps, Ev::AppWake(node));
    }

    /// Port counters.
    pub fn port_stats(&self, node: NodeId, port: PortId) -> PortStats {
        self.nodes[node].ports[port].stats
    }

    /// Egress drop/forward counters of a switch port.
    pub fn switch_egress_stats(&self, sw: usize, port: usize) -> (u64, u64) {
        let e = &self.switches[sw].sw.egress[port];
        (e.forwarded, e.dropped)
    }

    /// Replace a node's PTP synchronization state — the between-run
    /// resync an experiment applies to model servo wander over the
    /// minutes separating replay runs.
    pub fn set_ptp(&mut self, node: NodeId, ptp: crate::clock::PtpModel) {
        self.nodes[node].clock.ptp = ptp;
    }

    /// Re-steer a receive port's timestamp clock: set its residual rate
    /// error and anchor the error at the current simulation time.
    pub fn set_rx_clock_slope(&mut self, node: NodeId, port: PortId, slope_ppb: i64) {
        let p = &mut self.nodes[node].ports[port];
        p.rx_model.clock_slope_ppb = slope_ppb;
        p.rx_model.slope_base_ps = self.now;
    }

    /// Install a live receive tap on a port. The tap observes every
    /// packet that survives the drop stages, called with the stamped
    /// hardware rx timestamp (ps) right before the packet enters the rx
    /// ring — on both the per-packet and the coalesced-burst delivery
    /// paths. It must not assume software delivery order or timing: it
    /// fires at hardware admission, before any app wake. One tap per
    /// port; installing again replaces the previous one.
    pub fn set_rx_tap(&mut self, node: NodeId, port: PortId, tap: RxTap) {
        self.nodes[node].ports[port].rx_tap = Some(tap);
    }

    /// Remove a port's receive tap, if any.
    pub fn clear_rx_tap(&mut self, node: NodeId, port: PortId) {
        self.nodes[node].ports[port].rx_tap = None;
    }

    /// Install netem-style impairments on traffic arriving at a port.
    pub fn set_link_impairments(
        &mut self,
        node: NodeId,
        port: PortId,
        impair: LinkImpairments,
    ) {
        self.nodes[node].ports[port].impair = impair;
    }

    /// Borrow a node's app, downcast to its concrete type.
    ///
    /// # Panics
    /// Panics if the app is not of type `T`.
    pub fn with_app<T: App + 'static, R>(
        &mut self,
        node: NodeId,
        f: impl FnOnce(&mut T) -> R,
    ) -> R {
        let app = self.nodes[node].app.as_mut().expect("app in place");
        let t = app
            .as_any_mut()
            .downcast_mut::<T>()
            .expect("app type mismatch");
        f(t)
    }

    fn schedule(&mut self, t: u64, ev: Ev) {
        let t = t.max(self.now);
        self.queue.push(t, self.seq, ev);
        self.seq += 1;
    }

    /// Run until the queue is empty or `deadline_ps` is reached. Returns
    /// the time the run stopped at.
    pub fn run_until(&mut self, deadline_ps: u64) -> u64 {
        while let Some((t, ev)) = self.queue.pop_due(deadline_ps) {
            debug_assert!(t >= self.now, "time went backwards");
            self.now = t;
            self.events_processed += 1;
            self.dispatch(ev);
        }
        if deadline_ps != u64::MAX {
            self.now = self.now.max(deadline_ps);
        }
        // Mirror the engine's plain counters into the obs registry once
        // per run, outside the pop loop: the hot path stays untouched and
        // simulated time / RNG streams cannot be perturbed. gauge_set is
        // idempotent, so step-driven callers that re-enter run_until
        // publish the same totals, not doubled ones.
        if obs::is_enabled() {
            obs::gauge_set("sim.events_processed", self.events_processed);
            obs::gauge_set("sim.queue_depth_peak", self.queue.depth_peak() as u64);
            obs::gauge_set("sim.coalesced_events", self.coalesced_events);
            obs::gauge_set("sim.coalesced_packets", self.coalesced_packets);
            obs::gauge_set("sim.wire_events_elided", self.wire_events_elided);
            obs::gauge_set("sim.wheel_overflow_spills", self.queue.overflow_spills());
            obs::gauge_set("sim.remote_bursts", self.remote_bursts);
            obs::gauge_set("sim.remote_packets", self.remote_packets);
        }
        self.now
    }

    /// Run until no events remain.
    pub fn run_to_idle(&mut self) -> u64 {
        self.run_until(u64::MAX)
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::AppWake(n) => {
                self.nodes[n].wake_pending_at = None;
                self.poll_app(n, None);
            }
            Ev::AppControl(n, msg) => {
                self.poll_app(n, Some(msg));
            }
            Ev::TxPull(n, p) => self.tx_pull(n, p),
            Ev::Deliver(ep, mbuf, impaired) => {
                self.deliver_at(ep, mbuf, impaired, self.now)
            }
            Ev::DeliverBurst(ep, pkts) => self.deliver_burst(ep, pkts),
            Ev::SwitchEgress(s, p) => self.switch_egress(s, p),
        }
    }

    /// Run the app with a [`Dataplane`] view of its node, then apply the
    /// side effects (doorbells, wake requests).
    fn poll_app(&mut self, n: NodeId, control: Option<ControlMsg>) {
        let mut app = self.nodes[n].app.take().expect("app in place");
        let mut effects = CtxEffects::default();
        {
            let node = &mut self.nodes[n];
            let mut ctx = NodeCtx {
                now: self.now,
                clock: &node.clock,
                ports: &mut node.ports,
                pool: &self.pool,
                effects: &mut effects,
            };
            match control {
                Some(msg) => app.on_control(&msg, &mut ctx),
                None => app.on_wake(&mut ctx),
            }
        }
        self.nodes[n].app = Some(app);
        self.apply_effects(n, effects);
    }

    fn apply_effects(&mut self, n: NodeId, effects: CtxEffects) {
        if effects.clock_slew_ns != 0 {
            self.nodes[n].clock.ptp.offset_ns += effects.clock_slew_ns;
        }
        for p in effects.doorbells {
            // Arm the pull chain if this port is idle. Re-arming pays the
            // doorbell latency plus the pull engine's re-arm latency.
            let port = &mut self.nodes[n].ports[p];
            if !port.tx_armed && !port.tx_queue.is_empty() {
                port.tx_armed = true;
                let delay = port.tx_model.doorbell.sample_delay(&mut port.tx_rng)
                    + port.tx_model.rearm_latency.sample_delay(&mut port.tx_rng)
                    + port
                        .tx_model
                        .pull_read_latency
                        .sample_delay(&mut port.tx_rng);
                let at = self.now + delay;
                self.schedule(at, Ev::TxPull(n, p));
            }
        }
        if let Some(t) = effects.wake_at {
            let node = &mut self.nodes[n];
            let jitter = node.wake_jitter.sample_delay(&mut node.wake_rng);
            let at = t.max(self.now) + jitter;
            let redundant = node.wake_pending_at.is_some_and(|w| w <= at);
            if !redundant {
                node.wake_pending_at = Some(at);
                self.schedule(at, Ev::AppWake(n));
            }
        }
    }

    /// Emit a contiguous wire burst toward `ep`. Each packet carries its
    /// own last-bit arrival time; times are non-decreasing.
    ///
    /// Coalescing rules (DESIGN.md §10): a multi-packet burst becomes one
    /// [`Ev::DeliverBurst`] unless the destination is a node port with
    /// impairments armed — per-packet fates there (duplicates, reorder
    /// holds) re-schedule deliveries that must interleave with the rest
    /// of the burst in global `(time, seq)` order, so impaired links stay
    /// on the per-packet path. Switch-bound bursts fire at the FIRST
    /// arrival (cut-through into the egress pipeline, per-packet ready
    /// times preserved); node-bound bursts fire at the LAST arrival (NIC
    /// interrupt coalescing — packets become visible to the app together,
    /// while their hardware rx timestamps keep per-packet arrival times).
    fn emit_wire(&mut self, ep: Endpoint, mut pkts: Vec<(u64, Mbuf)>) {
        if pkts.is_empty() {
            return;
        }
        if let Endpoint::Remote(r) = ep {
            // Inter-domain link: admit locally when this sim hosts the
            // acceptor (the serial build), otherwise park the whole burst
            // for the coordinator. Either way the burst stays intact, so
            // the acceptor applies identical coalescing and RNG-draw
            // structure in both builds.
            let link = self.remote_out[r];
            if self.remote_in.contains_key(&link) {
                self.admit_remote(link, pkts);
            } else {
                self.outbox.push(RemoteBurst { link, pkts });
            }
            return;
        }
        let coalescible = self.cfg.coalesce
            && pkts.len() > 1
            && match ep {
                Endpoint::NodePort(n, p) => self.nodes[n].ports[p].impair.is_none(),
                _ => true,
            };
        if coalescible {
            let at = match ep {
                Endpoint::SwitchPort(..) => pkts.first().expect("non-empty").0,
                _ => pkts.last().expect("non-empty").0,
            };
            self.coalesced_events += 1;
            self.coalesced_packets += pkts.len() as u64;
            self.schedule(at, Ev::DeliverBurst(ep, pkts));
        } else {
            for (at, m) in pkts.drain(..) {
                self.schedule(at, Ev::Deliver(ep, m, false));
            }
        }
    }

    /// One DMA pull: take a batch of descriptors and serialize them onto
    /// the wire back-to-back.
    fn tx_pull(&mut self, n: NodeId, p: PortId) {
        // Collect scheduling decisions first, then emit events.
        let mut deliveries: Vec<(u64, Mbuf)> = Vec::new();
        let peer;
        let next_pull;
        let group;
        let wire_end;
        {
            let port = &mut self.nodes[n].ports[p];
            if port.tx_queue.is_empty() {
                port.tx_armed = false;
                return;
            }
            // Under backlog the engine fetches a full cap's worth of
            // descriptors per read; at light occupancy the sampled pull
            // pattern applies. (A TxPull event fires when a descriptor
            // read *completes*; the next read is issued immediately,
            // pipelined with serialization.)
            let cap = port.tx_model.batch.cap();
            let sampled = port.tx_model.batch.sample(&mut port.tx_rng).max(1);
            let batch = if port.tx_queue.len() >= cap {
                cap
            } else {
                sampled
            };
            // VF ports contend for the shared physical wire; dedicated
            // ports own theirs.
            let wire_free = match port.phys_group {
                Some(g) => self.phys_groups[g].max(port.wire_free_at),
                None => port.wire_free_at,
            };
            let mut t = self.now.max(wire_free);
            if let Some(shared) = port.tx_model.shared.as_mut() {
                t += shared.contention_wait_ps(self.now, port.tx_model.line_rate_bps, &mut port.tx_rng);
            }
            peer = port.peer;
            let prop = port.prop_ps;
            for _ in 0..batch {
                let Some(m) = port.tx_queue.pop_front() else {
                    break;
                };
                let ser = port.tx_model.serialization_ps(m.frame.wire_len());
                t += ser;
                port.stats.on_tx(1, m.len() as u64);
                deliveries.push((t + prop, m));
            }
            port.wire_free_at = t;
            wire_end = t;
            group = port.phys_group;
            if port.tx_queue.is_empty() {
                port.tx_armed = false;
                next_pull = None;
            } else {
                // The next descriptor read is issued now and completes
                // after the read latency, concurrently with the wire
                // draining this pull's packets. Only idle re-arms pay the
                // doorbell/re-arm latency (see apply_effects).
                let read = port
                    .tx_model
                    .pull_read_latency
                    .sample_delay(&mut port.tx_rng);
                next_pull = Some(self.now + read);
            }
        }
        if let Some(g) = group {
            self.phys_groups[g] = self.phys_groups[g].max(wire_end);
        }
        // Cut-through into a single-feeder switch ingress: the egress
        // queues see exactly the entries, order and `ready` times an
        // arrival event would have produced, so skip the event.
        let eager = match peer {
            Endpoint::SwitchPort(sw, ing) if self.cfg.coalesce => self.switches[sw].eager[ing],
            _ => false,
        };
        if eager {
            let Endpoint::SwitchPort(sw, ing) = peer else {
                unreachable!("eager requires a switch peer")
            };
            let span = self.switches[sw].sw.mirror[ing];
            let fwd = self.switches[sw].sw.fwd[ing];
            self.wire_events_elided += deliveries.len() as u64;
            for (at, m) in deliveries {
                if let Some(sp) = span {
                    self.enqueue_switch_egress(sw, sp, m.clone(), at);
                }
                if let Some(eg) = fwd {
                    self.enqueue_switch_egress(sw, eg, m, at);
                }
            }
        } else {
            self.emit_wire(peer, deliveries);
        }
        if let Some(at) = next_pull {
            self.schedule(at, Ev::TxPull(n, p));
        }
    }

    /// A coalesced wire burst arrives at an endpoint. Per-packet fates
    /// (drops, timestamps, switch pipeline latencies) are decided inside
    /// this one event, in arrival order.
    ///
    /// Node-bound bursts model NIC interrupt coalescing faithfully: every
    /// packet keeps its own hardware rx timestamp and ring-drop fate, but
    /// the burst raises ONE interrupt — a single delivery-latency draw
    /// anchored at the first arrival, one wake. (The per-packet path
    /// draws a latency per packet; the two modes are statistically
    /// equivalent but not RNG-identical, which is why cross-mode captures
    /// are not expected to match bit for bit.)
    fn deliver_burst(&mut self, ep: Endpoint, pkts: Vec<(u64, Mbuf)>) {
        obs::event("sim.burst_delivered", pkts.len() as u64, self.now);
        match ep {
            Endpoint::Unconnected => { /* black hole */ }
            Endpoint::Remote(_) => unreachable!("remote endpoints resolve at admission"),
            Endpoint::SwitchPort(s, ingress) => {
                // Hoist the port-program lookups; the per-packet pipeline
                // latency draws and queue pushes stay in arrival order.
                let span = self.switches[s].sw.mirror[ingress];
                let fwd = self.switches[s].sw.fwd[ingress];
                for (at, m) in pkts {
                    if let Some(span) = span {
                        self.enqueue_switch_egress(s, span, m.clone(), at);
                    }
                    if let Some(egress) = fwd {
                        self.enqueue_switch_egress(s, egress, m, at);
                    }
                }
            }
            Endpoint::NodePort(n, p) => {
                // emit_wire never coalesces toward impaired ports, so
                // this is the clean rx path only.
                let first_arrival = pkts.first().map_or(self.now, |&(at, _)| at);
                let mut delivered = false;
                let wake_at;
                {
                    let port = &mut self.nodes[n].ports[p];
                    for (at, m) in pkts {
                        if port.rx_model.drop_prob > 0.0
                            && port.rx_rng.chance(port.rx_model.drop_prob)
                        {
                            port.stats.on_rx_drop(1);
                            continue;
                        }
                        if port.rx_queue.len() >= port.rx_model.ring_cap {
                            port.stats.on_rx_drop(1);
                            continue;
                        }
                        let mut m = m;
                        // Hardware rx timestamps reflect the true
                        // per-packet wire arrival.
                        let t_eff = port.rx_model.slope_adjusted_ps(at);
                        let ts = port.rx_model.timestamp.stamp(t_eff, &mut port.rx_rng);
                        m.rx_ts_ps = Some(ts);
                        if let Some(tap) = port.rx_tap.as_mut() {
                            tap(ts, &m);
                        }
                        port.rx_queue.push_back(m);
                        delivered = true;
                    }
                    wake_at = (first_arrival
                        + port.rx_model.deliver_latency.sample_delay(&mut port.rx_rng))
                    .max(self.now);
                }
                if delivered {
                    let node = &mut self.nodes[n];
                    let redundant = node.wake_pending_at.is_some_and(|w| w <= wake_at);
                    if !redundant {
                        node.wake_pending_at = Some(wake_at);
                        self.schedule(wake_at, Ev::AppWake(n));
                    }
                }
            }
        }
    }

    /// A packet's last bit arrives at an endpoint. `arrival` is `self.now`
    /// on the per-packet path; inside a coalesced burst it is the packet's
    /// own wire-arrival time (earlier than `now` for node-bound bursts
    /// fired at last arrival, later for switch-bound bursts fired at
    /// first arrival).
    fn deliver_at(&mut self, ep: Endpoint, mbuf: Mbuf, impaired: bool, arrival: u64) {
        match ep {
            Endpoint::Unconnected => { /* black hole */ }
            Endpoint::Remote(_) => unreachable!("remote endpoints resolve at admission"),
            Endpoint::SwitchPort(s, ingress) => {
                // Mirror first: the span port gets a copy regardless of
                // (and without perturbing) the forwarding decision.
                if let Some(span) = self.switches[s].sw.mirror[ingress] {
                    self.enqueue_switch_egress(s, span, mbuf.clone(), arrival);
                }
                let Some(egress) = self.switches[s].sw.fwd[ingress] else {
                    return; // no forwarding entry: drop, like a real blank program
                };
                self.enqueue_switch_egress(s, egress, mbuf, arrival);
            }
            Endpoint::NodePort(n, p) => {
                // Impairment stage: fate decided once per wire crossing.
                // (emit_wire splits bursts headed for impaired ports, so
                // this normally runs with arrival == now; the arrival-
                // relative offsets keep the defensive in-burst case sane.)
                if !impaired && !self.nodes[n].ports[p].impair.is_none() {
                    let port = &mut self.nodes[n].ports[p];
                    let Some(fate) = port.impair.clone().apply(&mut port.rx_rng) else {
                        port.stats.on_rx_drop(1);
                        return;
                    };
                    let mut primary = mbuf;
                    if fate.corrupt {
                        primary.frame = corrupt_frame(&primary.frame);
                    }
                    if let Some(dup_delay) = fate.duplicate_delay_ps {
                        self.schedule(
                            arrival + dup_delay,
                            Ev::Deliver(ep, primary.clone(), true),
                        );
                    }
                    self.schedule(arrival + fate.delay_ps, Ev::Deliver(ep, primary, true));
                    return;
                }
                let wake_at;
                {
                    let port = &mut self.nodes[n].ports[p];
                    if port.rx_model.drop_prob > 0.0
                        && port.rx_rng.chance(port.rx_model.drop_prob)
                    {
                        port.stats.on_rx_drop(1);
                        return;
                    }
                    if port.rx_queue.len() >= port.rx_model.ring_cap {
                        port.stats.on_rx_drop(1);
                        return;
                    }
                    let mut m = mbuf;
                    // Hardware rx timestamps reflect the true per-packet
                    // wire arrival even when software visibility is
                    // coalesced to the end of the burst.
                    let t_eff = port.rx_model.slope_adjusted_ps(arrival);
                    let ts = port.rx_model.timestamp.stamp(t_eff, &mut port.rx_rng);
                    m.rx_ts_ps = Some(ts);
                    if let Some(tap) = port.rx_tap.as_mut() {
                        tap(ts, &m);
                    }
                    port.rx_queue.push_back(m);
                    wake_at = (arrival
                        + port.rx_model.deliver_latency.sample_delay(&mut port.rx_rng))
                    .max(self.now);
                }
                let node = &mut self.nodes[n];
                let redundant = node.wake_pending_at.is_some_and(|w| w <= wake_at);
                if !redundant {
                    node.wake_pending_at = Some(wake_at);
                    self.schedule(wake_at, Ev::AppWake(n));
                }
            }
        }
    }

    /// Queue a frame on a switch egress port (paying its own pipeline
    /// latency from its `arrival` time) and arm service if needed.
    fn enqueue_switch_egress(&mut self, s: usize, egress: usize, mbuf: Mbuf, arrival: u64) {
        let swr = &mut self.switches[s];
        // Every frame pays its own pipeline latency; serialization order
        // is FIFO from the egress queue.
        let lat = swr.sw.profile.latency.sample_delay(&mut swr.rng);
        let eq = &mut swr.sw.egress[egress];
        if eq.queue.len() >= swr.sw.profile.queue_cap {
            eq.dropped += 1;
            return;
        }
        let ready = arrival + lat;
        eq.queue.push_back((ready, mbuf));
        if !eq.service_armed {
            eq.service_armed = true;
            let at = ready.max(eq.busy_until_ps);
            self.schedule(at, Ev::SwitchEgress(s, egress));
        }
    }

    /// Install a mirror entry on a switch (span port tap).
    pub fn switch_mirror(&mut self, sw: usize, ingress: usize, span: usize) {
        self.switches[sw].sw.map_mirror(ingress, span);
        self.recompute_eager(sw);
    }

    /// Serve frames from a switch egress queue. With coalescing enabled,
    /// up to [`MAX_BURST`] queued frames are served in one event. The
    /// FIFO recurrence `start = max(now, busy_until, ready)` yields
    /// departure times identical to one-frame-per-event serving — frames
    /// enqueued after this event would join behind and see the same
    /// `busy_until` either way, and egress serving draws no RNG (pipeline
    /// latency is drawn at enqueue), so draw order is unaffected.
    fn switch_egress(&mut self, s: usize, p: usize) {
        let mut out: Vec<(u64, Mbuf)> = Vec::new();
        let peer;
        let next_service;
        {
            let swr = &mut self.switches[s];
            let rate = swr.sw.profile.line_rate_bps;
            let eq = &mut swr.sw.egress[p];
            let Some(&(ready, _)) = eq.queue.front() else {
                eq.service_armed = false;
                return;
            };
            // The head frame's pipeline latency may not have elapsed yet;
            // come back when it has.
            let head_start = self.now.max(eq.busy_until_ps).max(ready);
            if head_start > self.now {
                self.schedule(head_start, Ev::SwitchEgress(s, p));
                return;
            }
            let prop;
            (peer, prop) = swr.peers[p];
            let cap = if self.cfg.coalesce { MAX_BURST } else { 1 };
            while out.len() < cap {
                let Some(&(ready, _)) = eq.queue.front() else {
                    break;
                };
                let start = self.now.max(eq.busy_until_ps).max(ready);
                let (_, m) = eq.queue.pop_front().expect("peeked");
                let ser = crate::nic::serialization_ps(m.frame.wire_len(), rate);
                let depart = start + ser;
                eq.busy_until_ps = depart;
                eq.forwarded += 1;
                out.push((depart + prop, m));
            }
            next_service = eq.queue.front().map(|&(r, _)| eq.busy_until_ps.max(r));
            eq.service_armed = next_service.is_some();
        }
        self.emit_wire(peer, out);
        if let Some(at) = next_service {
            self.schedule(at, Ev::SwitchEgress(s, p));
        }
    }
}

/// Side effects an app produces during one poll.
#[derive(Default)]
struct CtxEffects {
    /// Ports whose tx ring received packets (doorbell rang).
    doorbells: Vec<PortId>,
    /// Earliest requested wake time (sim ps).
    wake_at: Option<u64>,
    /// Net wall-clock slew requested (a PTP servo step).
    clock_slew_ns: i64,
}

/// The [`Dataplane`] view an app sees while being polled.
struct NodeCtx<'a> {
    now: u64,
    clock: &'a NodeClock,
    ports: &'a mut [PortRuntime],
    pool: &'a Mempool,
    effects: &'a mut CtxEffects,
}

impl Dataplane for NodeCtx<'_> {
    fn num_ports(&self) -> usize {
        self.ports.len()
    }

    fn mempool(&self) -> &Mempool {
        self.pool
    }

    fn rx_burst(&mut self, port: PortId, out: &mut Burst) -> usize {
        out.clear();
        let p = &mut self.ports[port];
        let mut n = 0;
        while n < MAX_BURST {
            match p.rx_queue.pop_front() {
                Some(m) => {
                    p.stats.on_rx(1, m.len() as u64);
                    out.push(m).expect("burst capacity");
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    fn tx_burst(&mut self, port: PortId, burst: &mut Burst) -> usize {
        let p = &mut self.ports[port];
        let room = p.tx_model.ring_cap.saturating_sub(p.tx_queue.len());
        let take = room.min(burst.len());
        for m in burst.drain_front(take) {
            p.tx_queue.push_back(m);
        }
        if take > 0 && !self.effects.doorbells.contains(&port) {
            self.effects.doorbells.push(port);
        }
        // Packets that did not fit remain in `burst`; the caller retries
        // or drops them, exactly like a full DPDK descriptor ring.
        take
    }

    fn tsc(&self) -> u64 {
        self.clock.tsc_at(self.now)
    }

    fn tsc_hz(&self) -> u64 {
        self.clock.tsc_hz
    }

    fn wall_ns(&self) -> u64 {
        self.clock.wall_ns_at(self.now)
    }

    fn request_wake_at_tsc(&mut self, tsc: u64) {
        let t = self.clock.time_of_tsc(tsc);
        self.effects.wake_at = Some(match self.effects.wake_at {
            Some(w) => w.min(t),
            None => t,
        });
    }

    fn adjust_wall_clock(&mut self, delta_ns: i64) {
        self.effects.clock_slew_ns += delta_ns;
    }

    fn stats(&self, port: PortId) -> PortStats {
        self.ports[port].stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::TimestampModel;
    use crate::nic::BatchDist;
    use crate::switchdev::SwitchProfile;
    use crate::time::{NS, US};
    use choir_packet::{ChoirTag, FrameBuilder};

    /// Emits `count` tagged packets at a fixed gap, one per wake.
    struct Sender {
        builder: FrameBuilder,
        gap_cycles: u64,
        count: u64,
        sent: u64,
        start_tsc: Option<u64>,
        port: PortId,
    }

    impl Sender {
        fn new(count: u64, gap_cycles: u64) -> Self {
            Sender {
                builder: FrameBuilder::new(1400, 1, 2),
                gap_cycles,
                count,
                sent: 0,
                start_tsc: None,
                port: 0,
            }
        }
    }

    impl App for Sender {
        fn on_wake(&mut self, dp: &mut dyn Dataplane) {
            if self.sent >= self.count {
                return;
            }
            let now = dp.tsc();
            let start = *self.start_tsc.get_or_insert(now);
            let due = start + self.sent * self.gap_cycles;
            if now < due {
                dp.request_wake_at_tsc(due);
                return;
            }
            let frame = self
                .builder
                .build_tagged_snap(ChoirTag::new(1, 0, self.sent));
            let m = dp.mempool().alloc(frame).expect("pool");
            let mut b = Burst::new();
            b.push(m).unwrap();
            dp.tx_burst(self.port, &mut b);
            self.sent += 1;
            if self.sent < self.count {
                dp.request_wake_at_tsc(start + self.sent * self.gap_cycles);
            }
        }
    }

    /// Collects (seq, rx timestamp) of everything it receives.
    struct Sink {
        got: Vec<(u64, u64)>,
        buf: Burst,
    }

    impl Sink {
        fn new() -> Self {
            Sink {
                got: Vec::new(),
                buf: Burst::new(),
            }
        }
    }

    impl App for Sink {
        fn on_wake(&mut self, dp: &mut dyn Dataplane) {
            loop {
                let mut buf = std::mem::take(&mut self.buf);
                let n = dp.rx_burst(0, &mut buf);
                for m in buf.drain() {
                    let seq = m.frame.tag().map(|t| t.seq).unwrap_or(u64::MAX);
                    self.got.push((seq, m.rx_ts_ps.expect("stamped")));
                }
                self.buf = buf;
                if n == 0 {
                    break;
                }
            }
        }
    }

    fn ideal_clock() -> NodeClock {
        NodeClock::ideal(1_000_000_000) // 1 GHz: 1 cycle = 1 ns
    }

    fn direct_pair(sim: &mut Sim, tx: NicTxModel, rx: NicRxModel) -> (NodeId, NodeId) {
        let s = sim.add_node("sender", Sender::new(10, 1_000), ideal_clock(), Jitter::None);
        let k = sim.add_node("sink", Sink::new(), ideal_clock(), Jitter::None);
        let sp = sim.add_port(s, tx, NicRxModel::ideal());
        let kp = sim.add_port(k, NicTxModel::ideal(100_000_000_000), rx);
        sim.connect_nodes(s, sp, k, kp, 5 * NS);
        (s, k)
    }

    #[test]
    fn direct_link_delivers_everything_in_order() {
        let mut sim = Sim::new(SimConfig::default());
        let (s, k) = direct_pair(
            &mut sim,
            NicTxModel::ideal(100_000_000_000),
            NicRxModel::ideal(),
        );
        sim.wake_app(s, 0);
        sim.run_to_idle();
        let got = sim.with_app::<Sink, _>(k, |a| a.got.clone());
        assert_eq!(got.len(), 10);
        let seqs: Vec<u64> = got.iter().map(|&(s, _)| s).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
        // Timestamps strictly increasing.
        assert!(got.windows(2).all(|w| w[0].1 < w[1].1));
        assert_eq!(sim.port_stats(s, 0).tx_packets, 10);
        assert_eq!(sim.port_stats(k, 0).rx_packets, 10);
    }

    #[test]
    fn rx_tap_mirrors_the_delivered_stream_and_clears() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let mut sim = Sim::new(SimConfig::default());
        let (s, k) = direct_pair(
            &mut sim,
            NicTxModel::ideal(100_000_000_000),
            NicRxModel::ideal(),
        );
        let tapped: Rc<RefCell<Vec<(u64, u64)>>> = Rc::new(RefCell::new(Vec::new()));
        let sink_tap = Rc::clone(&tapped);
        sim.set_rx_tap(
            k,
            0,
            Box::new(move |ts, m| {
                let seq = m.frame.tag().map(|t| t.seq).unwrap_or(u64::MAX);
                sink_tap.borrow_mut().push((seq, ts));
            }),
        );
        sim.wake_app(s, 0);
        sim.run_to_idle();
        let got = sim.with_app::<Sink, _>(k, |a| a.got.clone());
        assert_eq!(got.len(), 10);
        assert_eq!(
            *tapped.borrow(),
            got,
            "tap must see the same (seq, rx_ts) stream the app drains"
        );
        // Clearing must drop the closure (and with it the Rc) without
        // disturbing the port.
        sim.clear_rx_tap(k, 0);
        assert_eq!(Rc::strong_count(&tapped), 1);
    }

    #[test]
    fn cbr_gaps_are_exact_with_ideal_models() {
        let mut sim = Sim::new(SimConfig::default());
        let (s, k) = direct_pair(
            &mut sim,
            NicTxModel::ideal(100_000_000_000),
            NicRxModel::ideal(),
        );
        sim.wake_app(s, 0);
        sim.run_to_idle();
        let got = sim.with_app::<Sink, _>(k, |a| a.got.clone());
        // 1 us spacing at the sender; ideal NICs preserve it exactly
        // (timestamps quantized to ns).
        let gaps: Vec<u64> = got.windows(2).map(|w| w[1].1 - w[0].1).collect();
        assert!(
            gaps.iter().all(|&g| g == US),
            "gaps {gaps:?}"
        );
        let _ = s;
    }

    /// Enqueues `count` packets in a single tx_burst on its first wake.
    struct BulkSender {
        builder: FrameBuilder,
        count: u64,
        done: bool,
    }

    impl App for BulkSender {
        fn on_wake(&mut self, dp: &mut dyn Dataplane) {
            if self.done {
                return;
            }
            self.done = true;
            let mut b = Burst::new();
            for i in 0..self.count {
                let m = dp
                    .mempool()
                    .alloc(self.builder.build_tagged_snap(ChoirTag::new(1, 0, i)))
                    .unwrap();
                b.push(m).unwrap();
            }
            dp.tx_burst(0, &mut b);
            assert!(b.is_empty(), "ring must accept the whole burst");
        }
    }

    #[test]
    fn chained_pulls_bunch_packets_back_to_back() {
        let mut sim = Sim::new(SimConfig::default());
        // All 10 descriptors are enqueued at once; the pull engine pays
        // its re-arm latency once, then chained pulls emit everything
        // back-to-back at line rate.
        let s = sim.add_node(
            "sender",
            BulkSender {
                builder: FrameBuilder::new(1400, 1, 2),
                count: 10,
                done: false,
            },
            ideal_clock(),
            Jitter::None,
        );
        let k = sim.add_node("sink", Sink::new(), ideal_clock(), Jitter::None);
        let tx = NicTxModel {
            batch: BatchDist::Fixed(5),
            rearm_latency: Jitter::Const(2 * US as i64),
            ..NicTxModel::ideal(100_000_000_000)
        };
        let sp = sim.add_port(s, tx, NicRxModel::ideal());
        let kp = sim.add_port(k, NicTxModel::ideal(100_000_000_000), NicRxModel::ideal());
        sim.connect_nodes(s, sp, k, kp, 0);
        sim.wake_app(s, 0);
        sim.run_to_idle();
        let got = sim.with_app::<Sink, _>(k, |a| a.got.clone());
        assert_eq!(got.len(), 10);
        // The re-arm latency delays the first packet...
        assert!(got[0].1 >= 2 * US, "first arrival {}", got[0].1);
        // ...and every gap is plain serialization spacing (113.92 ns,
        // ns-quantized) because chained pulls run back-to-back.
        let ser = 114 * NS;
        let gaps: Vec<u64> = got.windows(2).map(|w| w[1].1 - w[0].1).collect();
        for (i, &g) in gaps.iter().enumerate() {
            assert!(g <= ser + NS && g >= ser - 2 * NS, "gap {i}: {g}");
        }
    }

    #[test]
    fn switch_path_forwards_with_latency() {
        let mut sim = Sim::new(SimConfig::default());
        let s = sim.add_node("sender", Sender::new(5, 1_000), ideal_clock(), Jitter::None);
        let k = sim.add_node("sink", Sink::new(), ideal_clock(), Jitter::None);
        let sp = sim.add_port(s, NicTxModel::ideal(100_000_000_000), NicRxModel::ideal());
        let kp = sim.add_port(k, NicTxModel::ideal(100_000_000_000), NicRxModel::ideal());
        let sw = sim.add_switch(
            Switch::new(2, SwitchProfile::tofino2(100_000_000_000)),
            "sw0",
        );
        sim.connect_node_switch(s, sp, sw, 0, 5 * NS);
        sim.connect_node_switch(k, kp, sw, 1, 5 * NS);
        sim.switch_map(sw, 0, 1);
        sim.wake_app(s, 0);
        sim.run_to_idle();
        let got = sim.with_app::<Sink, _>(k, |a| a.got.clone());
        assert_eq!(got.len(), 5);
        assert_eq!(sim.switch_egress_stats(sw, 1), (5, 0));
        // First arrival: sender serialization (113.92ns) + 5ns prop +
        // 400ns switch latency + egress serialization + 5ns prop.
        let expect = 113_920 + 5 * NS + 400 * NS + 113_920 + 5 * NS;
        let t0 = got[0].1;
        assert!(
            t0 >= expect - 2 * NS && t0 <= expect + 2 * NS,
            "t0 = {t0}, expect ~{expect}"
        );
    }

    #[test]
    fn rx_ring_overflow_drops() {
        let mut sim = Sim::new(SimConfig::default());
        // Sink never woken before all packets arrive? It is woken per
        // delivery, which drains the queue — so instead use a tiny ring
        // and deliver a burst while the app cannot run: achieve this by
        // setting deliver_latency large so wakes arrive after all
        // deliveries.
        let rx = NicRxModel {
            ring_cap: 4,
            deliver_latency: Jitter::Const(1_000_000_000), // 1 ms
            ..NicRxModel::ideal()
        };
        let (s, k) = direct_pair(&mut sim, NicTxModel::ideal(100_000_000_000), rx);
        sim.wake_app(s, 0);
        sim.run_to_idle();
        let got = sim.with_app::<Sink, _>(k, |a| a.got.clone());
        assert_eq!(got.len(), 4);
        assert_eq!(sim.port_stats(k, 0).rx_dropped, 6);
        let _ = s;
    }

    #[test]
    fn probabilistic_rx_drops() {
        let mut sim = Sim::new(SimConfig::default());
        let rx = NicRxModel {
            drop_prob: 1.0,
            ..NicRxModel::ideal()
        };
        let (s, k) = direct_pair(&mut sim, NicTxModel::ideal(100_000_000_000), rx);
        sim.wake_app(s, 0);
        sim.run_to_idle();
        assert_eq!(sim.with_app::<Sink, _>(k, |a| a.got.len()), 0);
        assert_eq!(sim.port_stats(k, 0).rx_dropped, 10);
        let _ = s;
    }

    #[test]
    fn same_seed_same_capture_different_trial_differs() {
        let run = |trial: u64| {
            let mut sim = Sim::new(SimConfig {
                trial,
                ..SimConfig::default()
            });
            let tx = NicTxModel {
                doorbell: Jitter::Normal {
                    mean: 300_000.0,
                    sigma: 30_000.0,
                },
                ..NicTxModel::ideal(100_000_000_000)
            };
            let rx = NicRxModel {
                timestamp: TimestampModel::HwRealtime {
                    noise: Jitter::Normal {
                        mean: 0.0,
                        sigma: 4_000.0,
                    },
                },
                ..NicRxModel::ideal()
            };
            let (s, k) = direct_pair(&mut sim, tx, rx);
            sim.wake_app(s, 0);
            sim.run_to_idle();
            sim.with_app::<Sink, _>(k, |a| a.got.clone())
        };
        let a1 = run(0);
        let a2 = run(0);
        let b = run(1);
        assert_eq!(a1, a2, "same trial must be bit-identical");
        assert_ne!(a1, b, "different trials must re-roll jitter");
    }

    #[test]
    fn wake_jitter_delays_delivery() {
        let mut sim = Sim::new(SimConfig::default());
        let s = sim.add_node(
            "sender",
            Sender::new(1, 1_000),
            ideal_clock(),
            Jitter::Const(7 * US as i64), // every wake 7 us late
        );
        let k = sim.add_node("sink", Sink::new(), ideal_clock(), Jitter::None);
        let sp = sim.add_port(s, NicTxModel::ideal(100_000_000_000), NicRxModel::ideal());
        let kp = sim.add_port(k, NicTxModel::ideal(100_000_000_000), NicRxModel::ideal());
        sim.connect_nodes(s, sp, k, kp, 0);
        // The explicit wake_app is not jittered (it is an external kick),
        // but the sender immediately sends on first wake, so use the
        // requested-wake path: ask for a wake first.
        sim.wake_app(s, 0);
        sim.run_to_idle();
        let got = sim.with_app::<Sink, _>(k, |a| a.got.clone());
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn unconnected_port_blackholes() {
        let mut sim = Sim::new(SimConfig::default());
        let s = sim.add_node("sender", Sender::new(3, 1_000), ideal_clock(), Jitter::None);
        let _sp = sim.add_port(s, NicTxModel::ideal(100_000_000_000), NicRxModel::ideal());
        sim.wake_app(s, 0);
        sim.run_to_idle();
        assert_eq!(sim.port_stats(s, 0).tx_packets, 3);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Sim::new(SimConfig::default());
        let (s, k) = direct_pair(
            &mut sim,
            NicTxModel::ideal(100_000_000_000),
            NicRxModel::ideal(),
        );
        sim.wake_app(s, 0);
        // 10 packets at 1 us spacing: stop after ~3.5 us.
        sim.run_until(3_500_000);
        let early = sim.with_app::<Sink, _>(k, |a| a.got.len());
        assert!(early < 10, "got {early}");
        assert_eq!(sim.now_ps(), 3_500_000);
        sim.run_to_idle();
        assert_eq!(sim.with_app::<Sink, _>(k, |a| a.got.len()), 10);
    }

    #[test]
    fn vf_group_shares_one_physical_wire() {
        // Two senders, each on a VF of the SAME physical NIC, both
        // streaming to their own sink: their serializations must
        // interleave on one wire, stretching arrival spacing — while the
        // same setup on separate NICs does not.
        fn run(shared: bool) -> Vec<u64> {
            let mut sim = Sim::new(SimConfig::default());
            let s1 = sim.add_node("s1", Sender::new(50, 100), ideal_clock(), Jitter::None);
            let s2 = sim.add_node("s2", Sender::new(50, 100), ideal_clock(), Jitter::None);
            let k = sim.add_node("k", Sink::new(), ideal_clock(), Jitter::None);
            let k2 = sim.add_node("k2", Sink::new(), ideal_clock(), Jitter::None);
            let p1 = sim.add_port(s1, NicTxModel::ideal(100_000_000_000), NicRxModel::ideal());
            let p2 = sim.add_port(s2, NicTxModel::ideal(100_000_000_000), NicRxModel::ideal());
            let kp = sim.add_port(k, NicTxModel::ideal(100_000_000_000), NicRxModel::ideal());
            let kp2 = sim.add_port(k2, NicTxModel::ideal(100_000_000_000), NicRxModel::ideal());
            if shared {
                let phys = sim.add_phys_nic();
                sim.join_phys_nic(s1, p1, phys);
                sim.join_phys_nic(s2, p2, phys);
            }
            sim.connect_nodes(s1, p1, k, kp, 0);
            sim.connect_nodes(s2, p2, k2, kp2, 0);
            // Both senders emit at gaps of 100 ns — each packet takes
            // ~114 ns of wire, so one wire cannot carry both.
            sim.wake_app(s1, 0);
            sim.wake_app(s2, 0);
            sim.run_to_idle();
            sim.with_app::<Sink, _>(k, |a| a.got.iter().map(|&(_, t)| t).collect())
        }
        let shared_times = run(true);
        let dedicated_times = run(false);
        assert_eq!(shared_times.len(), 50);
        assert_eq!(dedicated_times.len(), 50);
        let span = |v: &[u64]| v.last().unwrap() - v[0];
        // Sharing the wire at 2x oversubscription roughly doubles the
        // time to drain the same stream.
        assert!(
            span(&shared_times) > span(&dedicated_times) * 3 / 2,
            "shared span {} vs dedicated {}",
            span(&shared_times),
            span(&dedicated_times)
        );
        // Nothing is lost either way: contention delays, never drops.
    }

    #[test]
    fn mirror_port_taps_traffic_without_perturbing_it() {
        let mut sim = Sim::new(SimConfig::default());
        let s = sim.add_node("sender", Sender::new(5, 1_000), ideal_clock(), Jitter::None);
        let k = sim.add_node("sink", Sink::new(), ideal_clock(), Jitter::None);
        let tap = sim.add_node("tap", Sink::new(), ideal_clock(), Jitter::None);
        let sp = sim.add_port(s, NicTxModel::ideal(100_000_000_000), NicRxModel::ideal());
        let kp = sim.add_port(k, NicTxModel::ideal(100_000_000_000), NicRxModel::ideal());
        let tp = sim.add_port(tap, NicTxModel::ideal(100_000_000_000), NicRxModel::ideal());
        let sw = sim.add_switch(
            Switch::new(3, SwitchProfile::tofino2(100_000_000_000)),
            "sw",
        );
        sim.connect_node_switch(s, sp, sw, 0, 0);
        sim.connect_node_switch(k, kp, sw, 1, 0);
        sim.connect_node_switch(tap, tp, sw, 2, 0);
        sim.switch_map(sw, 0, 1);
        sim.switch_mirror(sw, 0, 2);
        sim.wake_app(s, 0);
        sim.run_to_idle();
        let main: Vec<u64> = sim.with_app::<Sink, _>(k, |a| {
            a.got.iter().map(|&(q, _)| q).collect()
        });
        let span: Vec<u64> = sim.with_app::<Sink, _>(tap, |a| {
            a.got.iter().map(|&(q, _)| q).collect()
        });
        assert_eq!(main, vec![0, 1, 2, 3, 4]);
        assert_eq!(span, main, "span sees an identical copy");
        // Timing on the main path is unchanged by mirroring (compare to a
        // run without the tap).
        let mut sim2 = Sim::new(SimConfig::default());
        let s2 = sim2.add_node("sender", Sender::new(5, 1_000), ideal_clock(), Jitter::None);
        let k2 = sim2.add_node("sink", Sink::new(), ideal_clock(), Jitter::None);
        let sp2 = sim2.add_port(s2, NicTxModel::ideal(100_000_000_000), NicRxModel::ideal());
        let kp2 = sim2.add_port(k2, NicTxModel::ideal(100_000_000_000), NicRxModel::ideal());
        let sw2 = sim2.add_switch(
            Switch::new(2, SwitchProfile::tofino2(100_000_000_000)),
            "sw",
        );
        sim2.connect_node_switch(s2, sp2, sw2, 0, 0);
        sim2.connect_node_switch(k2, kp2, sw2, 1, 0);
        sim2.switch_map(sw2, 0, 1);
        sim2.wake_app(s2, 0);
        sim2.run_to_idle();
        let base = sim2.with_app::<Sink, _>(k2, |a| a.got.clone());
        let with_tap = sim.with_app::<Sink, _>(k, |a| a.got.clone());
        assert_eq!(base, with_tap, "the tap must not perturb the main path");
    }

    #[test]
    fn link_impairments_drop_duplicate_and_reorder() {
        use crate::impair::LinkImpairments;
        // Loss: everything vanishes.
        let mut sim = Sim::new(SimConfig::default());
        let (s, k) = direct_pair(
            &mut sim,
            NicTxModel::ideal(100_000_000_000),
            NicRxModel::ideal(),
        );
        sim.set_link_impairments(k, 0, LinkImpairments::lossy(1.0));
        sim.wake_app(s, 0);
        sim.run_to_idle();
        assert_eq!(sim.with_app::<Sink, _>(k, |a| a.got.len()), 0);
        assert_eq!(sim.port_stats(k, 0).rx_dropped, 10);

        // Duplication: everything arrives twice.
        let mut sim = Sim::new(SimConfig::default());
        let (s, k) = direct_pair(
            &mut sim,
            NicTxModel::ideal(100_000_000_000),
            NicRxModel::ideal(),
        );
        sim.set_link_impairments(
            k,
            0,
            LinkImpairments {
                dup_prob: 1.0,
                ..LinkImpairments::none()
            },
        );
        sim.wake_app(s, 0);
        sim.run_to_idle();
        let got = sim.with_app::<Sink, _>(k, |a| a.got.clone());
        assert_eq!(got.len(), 20);

        // Reordering: a long hold overturns arrival order.
        let mut sim = Sim::new(SimConfig::default());
        let (s, k) = direct_pair(
            &mut sim,
            NicTxModel::ideal(100_000_000_000),
            NicRxModel::ideal(),
        );
        sim.set_link_impairments(
            k,
            0,
            LinkImpairments {
                reorder_prob: 0.5,
                reorder_hold: Jitter::Const(50 * US as i64),
                ..LinkImpairments::none()
            },
        );
        sim.wake_app(s, 0);
        sim.run_to_idle();
        let got = sim.with_app::<Sink, _>(k, |a| a.got.clone());
        assert_eq!(got.len(), 10, "reordering must not lose packets");
        let seqs: Vec<u64> = got.iter().map(|&(s, _)| s).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_ne!(seqs, sorted, "order must actually change");
    }

    #[test]
    fn control_messages_reach_apps() {
        struct CtrlSpy {
            got: Vec<ControlMsg>,
        }
        impl App for CtrlSpy {
            fn on_wake(&mut self, _dp: &mut dyn Dataplane) {}
            fn on_control(&mut self, msg: &ControlMsg, _dp: &mut dyn Dataplane) {
                self.got.push(*msg);
            }
        }
        let mut sim = Sim::new(SimConfig::default());
        let n = sim.add_node("spy", CtrlSpy { got: Vec::new() }, ideal_clock(), Jitter::None);
        sim.send_control(n, ControlMsg::StartRecord, 1_000);
        sim.send_control(n, ControlMsg::StopRecord, 2_000);
        sim.run_to_idle();
        let got = sim.with_app::<CtrlSpy, _>(n, |a| a.got.clone());
        assert_eq!(got, vec![ControlMsg::StartRecord, ControlMsg::StopRecord]);
    }
}
