//! Offline stand-in for the `bytes` crate.
//!
//! The workspace builds in hermetic environments with no crates.io
//! access, so the handful of external dependencies are vendored as
//! minimal, API-compatible implementations. This one provides [`Bytes`]:
//! an immutable, reference-counted byte buffer with cheap clones and
//! zero-copy slicing — exactly the surface Choir's packet handling uses
//! (shared frame storage where a recording retain is a refcount bump).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::{Arc, OnceLock};

/// Observer notified when a shared storage allocation is released.
///
/// At most one hook can be attached per allocation (see
/// [`Bytes::try_attach_hook`]); it fires exactly once, when the last
/// handle sharing the storage drops. This lets an external resource
/// manager (e.g. a packet mempool) piggyback its accounting on the
/// buffer's existing refcount instead of allocating its own guard.
pub trait StorageHook: Send + Sync {
    /// The last handle to the storage was dropped.
    fn on_storage_release(&self);
}

/// Heap storage plus an optional release hook.
struct SharedVec {
    data: Vec<u8>,
    hook: OnceLock<Arc<dyn StorageHook>>,
}

impl Drop for SharedVec {
    fn drop(&mut self) {
        if let Some(h) = self.hook.get() {
            h.on_storage_release();
        }
    }
}

/// Shared storage behind a [`Bytes`] handle.
#[derive(Clone)]
enum Storage {
    /// Borrowed from static memory; never copied.
    Static(&'static [u8]),
    /// Heap storage shared between all clones and sub-slices.
    Shared(Arc<SharedVec>),
}

/// An immutable, cheaply cloneable byte buffer.
///
/// Clones and sub-slices share the underlying allocation; `as_ptr`
/// identity is preserved across clones, which Choir's no-copy recording
/// tests rely on.
#[derive(Clone)]
pub struct Bytes {
    storage: Storage,
    offset: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub const fn new() -> Self {
        Bytes {
            storage: Storage::Static(&[]),
            offset: 0,
            len: 0,
        }
    }

    /// Wrap a static slice without copying.
    pub const fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            storage: Storage::Static(data),
            offset: 0,
            len: data.len(),
        }
    }

    /// Copy `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        match &self.storage {
            Storage::Static(s) => &s[self.offset..self.offset + self.len],
            Storage::Shared(v) => &v.data[self.offset..self.offset + self.len],
        }
    }

    /// Attach a release hook to this buffer's shared storage.
    ///
    /// Returns `false` without attaching when the storage is static
    /// (never released) or already carries a hook; the caller must then
    /// arrange its own bookkeeping.
    pub fn try_attach_hook(&self, hook: Arc<dyn StorageHook>) -> bool {
        match &self.storage {
            Storage::Static(_) => false,
            Storage::Shared(v) => v.hook.set(hook).is_ok(),
        }
    }

    /// How many [`Bytes`] handles share this buffer's storage
    /// allocation (1 for static storage, which is never freed).
    pub fn storage_refcount(&self) -> usize {
        match &self.storage {
            Storage::Static(_) => 1,
            Storage::Shared(v) => Arc::strong_count(v),
        }
    }

    /// Mutable access to the visible bytes when this handle is the sole
    /// owner of the storage; `None` when static or currently shared.
    ///
    /// This is the copy-free fast path for in-place rewrites (trailer
    /// stamping): uniqueness guarantees no other handle can observe the
    /// mutation.
    pub fn try_unique_mut(&mut self) -> Option<&mut [u8]> {
        match &mut self.storage {
            Storage::Static(_) => None,
            Storage::Shared(v) => {
                let sv = Arc::get_mut(v)?;
                sv.data.get_mut(self.offset..self.offset + self.len)
            }
        }
    }

    /// A zero-copy sub-slice sharing this buffer's storage.
    ///
    /// # Panics
    /// Panics when the range is out of bounds, like `bytes::Bytes::slice`.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice range {start}..{end} out of bounds of length {}",
            self.len
        );
        Bytes {
            storage: self.storage.clone(),
            offset: self.offset + start,
            len: end - start,
        }
    }

    /// Copy the bytes out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            storage: Storage::Shared(Arc::new(SharedVec {
                data: v,
                hook: OnceLock::new(),
            })),
            offset: 0,
            len,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr());
        assert_eq!(a, b);
    }

    #[test]
    fn slice_is_zero_copy_and_bounded() {
        let a = Bytes::from(vec![0u8, 1, 2, 3, 4, 5]);
        let s = a.slice(2..5);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.as_ptr(), unsafe { a.as_ptr().add(2) });
        let t = a.slice(..3);
        assert_eq!(&t[..], &[0, 1, 2]);
        let u = a.slice(..);
        assert_eq!(u.len(), 6);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Bytes::from(vec![1u8]).slice(0..9);
    }

    #[test]
    fn hook_fires_once_on_last_release() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        struct Counter(AtomicUsize);
        impl StorageHook for Counter {
            fn on_storage_release(&self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }

        let counter = Arc::new(Counter(AtomicUsize::new(0)));
        let a = Bytes::from(vec![1u8, 2, 3]);
        assert!(a.try_attach_hook(counter.clone()));
        // Second hook on the same storage is refused.
        assert!(!a.try_attach_hook(counter.clone()));
        let b = a.clone();
        let s = a.slice(1..2);
        assert_eq!(a.storage_refcount(), 3);
        drop(a);
        drop(s);
        assert_eq!(counter.0.load(Ordering::Relaxed), 0);
        drop(b);
        assert_eq!(counter.0.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn static_storage_refuses_hooks() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        struct Counter(AtomicUsize);
        impl StorageHook for Counter {
            fn on_storage_release(&self) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }

        let s = Bytes::from_static(b"abc");
        assert!(!s.try_attach_hook(Arc::new(Counter(AtomicUsize::new(0)))));
        assert_eq!(s.storage_refcount(), 1);
    }

    #[test]
    fn unique_mut_only_when_unshared() {
        let mut a = Bytes::from(vec![0u8; 4]);
        a.try_unique_mut().expect("sole owner")[3] = 9;
        assert_eq!(&a[..], &[0, 0, 0, 9]);
        let b = a.clone();
        assert!(a.try_unique_mut().is_none(), "shared storage");
        drop(b);
        a.try_unique_mut().expect("unique again")[0] = 7;
        assert_eq!(&a[..], &[7, 0, 0, 9]);
        // A sub-slice mutates only its visible window.
        let mut s = Bytes::from(vec![1u8, 2, 3, 4]).slice(1..3);
        let w = s.try_unique_mut().expect("sole owner of storage");
        assert_eq!(w.len(), 2);
        w[0] = 9;
        assert_eq!(&s[..], &[9, 3]);
        assert!(Bytes::from_static(b"abc").try_unique_mut().is_none());
    }

    #[test]
    fn static_and_comparisons() {
        let s = Bytes::from_static(b"abc");
        assert_eq!(s, *b"abc".as_slice());
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::copy_from_slice(b"xy").to_vec(), vec![b'x', b'y']);
    }
}
