//! Chunked pcap reading for the streaming κ engine.
//!
//! [`choir_packet::pcap::read_pcap`] materializes a whole capture before
//! anything can be analyzed — fine for the batch pipeline, wasteful for
//! [`choir_core::metrics::stream`], which only ever needs the next burst.
//! [`PcapChunkReader`] reads a capture incrementally from any
//! [`std::io::Read`], yielding record batches of a configurable size, so
//! a multi-gigabyte capture streams into an `IncrementalComparison` with
//! memory bounded by the chunk size (plus the engine's lookahead window).
//!
//! The reader accepts the same four magics as the batch parser
//! (nanosecond/microsecond resolution, native and byte-swapped) and
//! yields records identical to [`choir_packet::pcap::parse_pcap`]'s, in
//! the same order — only the delivery granularity differs.

use std::io::{self, Read};

use bytes::Bytes;

use choir_packet::pcap::{PcapError, PcapRecord, PCAP_NS_MAGIC, PCAP_US_MAGIC};
use choir_packet::Frame;

/// Default records per chunk: roughly a few mbuf bursts' worth.
pub const DEFAULT_CHUNK_RECORDS: usize = 1024;

/// An incremental pcap reader yielding batches of records.
///
/// ```
/// use choir_capture::chunked::PcapChunkReader;
/// use choir_packet::pcap::PcapWriter;
/// use choir_packet::Frame;
/// use bytes::Bytes;
///
/// let mut w = PcapWriter::new(Vec::new()).unwrap();
/// for i in 0..10u64 {
///     w.write_record(i * 1_000, &Frame::new(Bytes::from(vec![0u8; 60]))).unwrap();
/// }
/// let buf = w.finish().unwrap();
/// let reader = PcapChunkReader::new(&buf[..], 4).unwrap();
/// let sizes: Vec<usize> = reader.map(|c| c.unwrap().len()).collect();
/// assert_eq!(sizes, [4, 4, 2]);
/// ```
pub struct PcapChunkReader<R: Read> {
    input: R,
    swapped: bool,
    subsec_to_ns: u64,
    chunk: usize,
    done: bool,
}

impl<R: Read> PcapChunkReader<R> {
    /// Validate the 24-byte global header and return a reader that yields
    /// up to `chunk_size` records per batch (`0` is clamped to 1).
    pub fn new(mut input: R, chunk_size: usize) -> Result<Self, PcapError> {
        let mut hdr = [0u8; 24];
        input.read_exact(&mut hdr).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                PcapError::Truncated
            } else {
                PcapError::Io(e)
            }
        })?;
        let raw_magic = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let (subsec_to_ns, swapped): (u64, bool) = match raw_magic {
            PCAP_NS_MAGIC => (1, false),
            PCAP_US_MAGIC => (1_000, false),
            m if m == PCAP_NS_MAGIC.swap_bytes() => (1, true),
            m if m == PCAP_US_MAGIC.swap_bytes() => (1_000, true),
            other => return Err(PcapError::BadMagic(other)),
        };
        Ok(PcapChunkReader {
            input,
            swapped,
            subsec_to_ns,
            chunk: chunk_size.max(1),
            done: false,
        })
    }

    /// Read a 16-byte record header, distinguishing clean end-of-capture
    /// (EOF on the first byte → `None`) from a capture cut mid-header.
    fn read_record_header(&mut self) -> Result<Option<[u8; 16]>, PcapError> {
        let mut hdr = [0u8; 16];
        let mut filled = 0;
        while filled < 16 {
            match self.input.read(&mut hdr[filled..]) {
                Ok(0) if filled == 0 => return Ok(None),
                Ok(0) => return Err(PcapError::Truncated),
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(PcapError::Io(e)),
            }
        }
        Ok(Some(hdr))
    }

    /// The next batch of up to `chunk_size` records, `None` at clean EOF.
    ///
    /// The final batch may be short. After an error or EOF every further
    /// call returns `Ok(None)`.
    pub fn next_chunk(&mut self) -> Result<Option<Vec<PcapRecord>>, PcapError> {
        if self.done {
            return Ok(None);
        }
        let result = self.fill_chunk();
        if result.is_err() {
            self.done = true;
        }
        result
    }

    fn fill_chunk(&mut self) -> Result<Option<Vec<PcapRecord>>, PcapError> {
        let mut out = Vec::with_capacity(self.chunk);
        while out.len() < self.chunk {
            let Some(hdr) = self.read_record_header()? else {
                self.done = true;
                break;
            };
            let u32at = |o: usize| {
                let v = u32::from_le_bytes([hdr[o], hdr[o + 1], hdr[o + 2], hdr[o + 3]]);
                if self.swapped {
                    v.swap_bytes()
                } else {
                    v
                }
            };
            let sec = u32at(0) as u64;
            let nsec = u32at(4) as u64;
            let incl = u32at(8) as usize;
            let orig = u32at(12);
            let mut body = vec![0u8; incl];
            self.input.read_exact(&mut body).map_err(|e| {
                if e.kind() == io::ErrorKind::UnexpectedEof {
                    PcapError::Truncated
                } else {
                    PcapError::Io(e)
                }
            })?;
            let data = Bytes::from(body);
            let frame = if orig as usize > incl {
                Frame::truncated(data, orig)
            } else {
                Frame::new(data)
            };
            out.push(PcapRecord {
                ts_ns: sec * 1_000_000_000 + nsec * self.subsec_to_ns,
                frame,
            });
        }
        if out.is_empty() {
            Ok(None)
        } else {
            Ok(Some(out))
        }
    }
}

impl<R: Read> Iterator for PcapChunkReader<R> {
    type Item = Result<Vec<PcapRecord>, PcapError>;

    fn next(&mut self) -> Option<Self::Item> {
        match self.next_chunk() {
            Ok(Some(chunk)) => Some(Ok(chunk)),
            Ok(None) => None,
            Err(e) => Some(Err(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use choir_packet::pcap::{parse_pcap, PcapWriter, DEFAULT_SNAPLEN, LINKTYPE_ETHERNET};
    use choir_packet::ChoirTag;

    fn sample_pcap(n: u64) -> Vec<u8> {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for i in 0..n {
            let mut buf = vec![0u8; 80];
            ChoirTag::new(1, 0, i).stamp_trailer(&mut buf);
            w.write_record(i * 1_000 + 37, &Frame::new(Bytes::from(buf)))
                .unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn chunked_equals_batch_parse_across_chunk_sizes() {
        let buf = sample_pcap(101);
        let batch = parse_pcap(&buf).unwrap();
        for chunk in [1usize, 3, 64, 101, 10_000] {
            let reader = PcapChunkReader::new(&buf[..], chunk).unwrap();
            let streamed: Vec<PcapRecord> = reader.flat_map(|c| c.unwrap()).collect();
            assert_eq!(streamed, batch, "chunk size {chunk}");
        }
    }

    #[test]
    fn chunk_sizes_and_short_tail() {
        let buf = sample_pcap(10);
        let sizes: Vec<usize> = PcapChunkReader::new(&buf[..], 4)
            .unwrap()
            .map(|c| c.unwrap().len())
            .collect();
        assert_eq!(sizes, [4, 4, 2]);
    }

    #[test]
    fn empty_capture_yields_no_chunks() {
        let buf = PcapWriter::new(Vec::new()).unwrap().finish().unwrap();
        let mut reader = PcapChunkReader::new(&buf[..], 8).unwrap();
        assert!(reader.next_chunk().unwrap().is_none());
        assert!(reader.next().is_none());
    }

    #[test]
    fn zero_chunk_size_clamps_to_one() {
        let buf = sample_pcap(3);
        let sizes: Vec<usize> = PcapChunkReader::new(&buf[..], 0)
            .unwrap()
            .map(|c| c.unwrap().len())
            .collect();
        assert_eq!(sizes, [1, 1, 1]);
    }

    #[test]
    fn bad_magic_rejected_up_front() {
        let mut buf = sample_pcap(1);
        buf[0] ^= 0xff;
        assert!(matches!(
            PcapChunkReader::new(&buf[..], 8),
            Err(PcapError::BadMagic(_))
        ));
    }

    #[test]
    fn truncated_global_header() {
        assert!(matches!(
            PcapChunkReader::new(&[0u8; 10][..], 8),
            Err(PcapError::Truncated)
        ));
    }

    #[test]
    fn truncated_record_body_errors_then_stops() {
        let buf = sample_pcap(2);
        let mut reader = PcapChunkReader::new(&buf[..buf.len() - 5], 8).unwrap();
        assert!(matches!(reader.next(), Some(Err(PcapError::Truncated))));
        assert!(reader.next().is_none(), "errors are terminal");
    }

    #[test]
    fn truncated_record_header_errors() {
        let buf = sample_pcap(1);
        // Global header + 8 of the 16 record-header bytes.
        let mut reader = PcapChunkReader::new(&buf[..32], 8).unwrap();
        assert!(matches!(reader.next(), Some(Err(PcapError::Truncated))));
    }

    /// A one-record pcap with explicit endianness and magic (mirrors the
    /// batch parser's handmade fixture).
    fn handmade_pcap(magic: u32, big_endian: bool, sec: u32, subsec: u32, payload: &[u8]) -> Vec<u8> {
        let put = |buf: &mut Vec<u8>, v: u32| {
            if big_endian {
                buf.extend_from_slice(&v.to_be_bytes());
            } else {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        };
        let put16 = |buf: &mut Vec<u8>, v: u16| {
            if big_endian {
                buf.extend_from_slice(&v.to_be_bytes());
            } else {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        };
        let mut buf = Vec::new();
        put(&mut buf, magic);
        put16(&mut buf, 2);
        put16(&mut buf, 4);
        put(&mut buf, 0);
        put(&mut buf, 0);
        put(&mut buf, DEFAULT_SNAPLEN);
        put(&mut buf, LINKTYPE_ETHERNET);
        put(&mut buf, sec);
        put(&mut buf, subsec);
        put(&mut buf, payload.len() as u32);
        put(&mut buf, payload.len() as u32);
        buf.extend_from_slice(payload);
        buf
    }

    #[test]
    fn microsecond_and_swapped_magics_match_batch_parser() {
        for (magic, big_endian) in [
            (PCAP_US_MAGIC, false),
            (PCAP_US_MAGIC, true),
            (PCAP_NS_MAGIC, true),
        ] {
            let buf = handmade_pcap(magic, big_endian, 1, 2, b"abcd");
            let batch = parse_pcap(&buf).unwrap();
            let streamed: Vec<PcapRecord> = PcapChunkReader::new(&buf[..], 8)
                .unwrap()
                .flat_map(|c| c.unwrap())
                .collect();
            assert_eq!(streamed, batch, "magic {magic:#x} be={big_endian}");
        }
    }
}
