//! A blocking client for the daemon's wire protocol.
//!
//! One [`Client`] wraps one TCP connection and issues one
//! request/response exchange at a time. In-protocol refusals surface as
//! [`ClientError::Daemon`] (the connection stays usable); transport
//! failures as [`ClientError::Wire`].

use std::net::{TcpStream, ToSocketAddrs};

use choir_core::metrics::Observation;

use crate::wire::{
    recv_response, send_request, Request, Response, WireError, WireFinal, WireObs,
};

/// Observations per `Ingest` frame when the client chunks a large
/// batch. Keeps every frame far under [`crate::wire::MAX_FRAME_BYTES`].
pub const INGEST_CHUNK: usize = 50_000;

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure — the connection is dead.
    Wire(WireError),
    /// The daemon refused the request; the connection stays usable.
    Daemon(String),
    /// The daemon answered with a variant the call did not expect.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "connection failed: {e}"),
            ClientError::Daemon(m) => write!(f, "daemon refused: {m}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

/// One connection to a daemon.
pub struct Client {
    reader: TcpStream,
    writer: TcpStream,
}

impl Client {
    /// Connect to a daemon.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = writer.try_clone()?;
        Ok(Client { reader, writer })
    }

    /// One request/response exchange.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        send_request(&mut self.writer, req)?;
        match recv_response(&mut self.reader)? {
            Some(r) => Ok(r),
            None => Err(ClientError::Wire(WireError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection mid-exchange",
            )))),
        }
    }

    fn expect_ok(&mut self, req: &Request) -> Result<(), ClientError> {
        match self.call(req)? {
            Response::Ok => Ok(()),
            Response::Error { message } => Err(ClientError::Daemon(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.expect_ok(&Request::Ping)
    }

    /// Create a tenant (`budget_bytes == 0` uses the daemon default).
    pub fn create_tenant(&mut self, tenant: &str, budget_bytes: u64) -> Result<(), ClientError> {
        self.expect_ok(&Request::CreateTenant {
            tenant: tenant.into(),
            budget_bytes,
        })
    }

    /// Drop a tenant and everything it owns.
    pub fn drop_tenant(&mut self, tenant: &str) -> Result<(), ClientError> {
        self.expect_ok(&Request::DropTenant {
            tenant: tenant.into(),
        })
    }

    /// Open a stream (the tenant's first stream becomes its baseline).
    pub fn open_stream(&mut self, tenant: &str, stream: &str) -> Result<(), ClientError> {
        self.expect_ok(&Request::OpenStream {
            tenant: tenant.into(),
            stream: stream.into(),
        })
    }

    /// Append observations starting at client-side record count `seq`
    /// (the count *before* this batch). Chunks large batches; returns
    /// the stream's total after the last chunk. Resending a batch the
    /// daemon already has is harmless — overlap is deduplicated.
    pub fn ingest(
        &mut self,
        tenant: &str,
        stream: &str,
        mut seq: u64,
        records: &[Observation],
    ) -> Result<u64, ClientError> {
        let mut total = seq;
        for chunk in records.chunks(INGEST_CHUNK.max(1)) {
            let req = Request::Ingest {
                tenant: tenant.into(),
                stream: stream.into(),
                seq,
                records: chunk.iter().map(|&o| WireObs::from(o)).collect(),
            };
            match self.call(&req)? {
                Response::Ingested { total: t } => {
                    total = t;
                    seq += chunk.len() as u64;
                }
                Response::Error { message } => return Err(ClientError::Daemon(message)),
                other => return Err(ClientError::Unexpected(format!("{other:?}"))),
            }
        }
        Ok(total)
    }

    /// Ingest progress of a stream: `(ingested, finished, is_baseline)`.
    /// A reconnecting client resumes by passing `ingested` as the next
    /// `seq`.
    pub fn stream_status(
        &mut self,
        tenant: &str,
        stream: &str,
    ) -> Result<(u64, bool, bool), ClientError> {
        match self.call(&Request::StreamStatus {
            tenant: tenant.into(),
            stream: stream.into(),
        })? {
            Response::Status {
                ingested,
                finished,
                baseline,
            } => Ok((ingested, finished, baseline)),
            Response::Error { message } => Err(ClientError::Daemon(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Declare a stream complete. Comparison streams return their final
    /// summary vs the baseline; the baseline returns `None`.
    pub fn finish_stream(
        &mut self,
        tenant: &str,
        stream: &str,
    ) -> Result<Option<WireFinal>, ClientError> {
        match self.call(&Request::FinishStream {
            tenant: tenant.into(),
            stream: stream.into(),
        })? {
            Response::Finished { summary } => Ok(summary),
            Response::Error { message } => Err(ClientError::Daemon(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Live (or final) κ of a comparison stream. Raw [`Response`] so
    /// callers get both the float and its bits.
    pub fn snapshot(&mut self, tenant: &str, stream: &str) -> Result<Response, ClientError> {
        match self.call(&Request::Snapshot {
            tenant: tenant.into(),
            stream: stream.into(),
        })? {
            r @ Response::Snapshot { .. } => Ok(r),
            Response::Error { message } => Err(ClientError::Daemon(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Snapshot trail of a comparison stream.
    pub fn trail(&mut self, tenant: &str, stream: &str) -> Result<Response, ClientError> {
        match self.call(&Request::Trail {
            tenant: tenant.into(),
            stream: stream.into(),
        })? {
            r @ Response::Trail { .. } => Ok(r),
            Response::Error { message } => Err(ClientError::Daemon(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// All-pairs κ matrix over a tenant's streams.
    pub fn matrix(&mut self, tenant: &str) -> Result<Response, ClientError> {
        match self.call(&Request::Matrix {
            tenant: tenant.into(),
        })? {
            r @ Response::Matrix { .. } => Ok(r),
            Response::Error { message } => Err(ClientError::Daemon(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Daemon-wide accounting.
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        match self.call(&Request::Stats)? {
            r @ Response::Stats { .. } => Ok(r),
            Response::Error { message } => Err(ClientError::Daemon(message)),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Force a durable checkpoint now.
    pub fn checkpoint(&mut self) -> Result<(), ClientError> {
        self.expect_ok(&Request::Checkpoint)
    }

    /// Checkpoint, then stop the daemon.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.expect_ok(&Request::Shutdown)
    }
}
