//! Message buffers and fixed-capacity pools.
//!
//! DPDK stores packets in mbufs allocated from hugepage-backed mempools;
//! the pool size is what bounds how deep a Choir recording can be (paper
//! §5: "The primary restriction is RAM, which only controls how large the
//! replay buffer is"). This module reproduces that accounting: a
//! [`Mempool`] has a fixed slot count, every live [`Mbuf`] (and every
//! recording that retains one) occupies a slot, and allocation fails —
//! never blocks, never grows — when the pool is exhausted, exactly like
//! `rte_pktmbuf_alloc` returning NULL.
//!
//! Packet bytes themselves live in [`choir_packet::Frame`]'s refcounted
//! storage, so retaining a transmitted packet for a recording is a
//! refcount bump, not a copy.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use bytes::StorageHook;
use choir_packet::Frame;

/// Error returned when a [`Mempool`] has no free slots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolExhausted;

impl fmt::Display for PoolExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mempool exhausted")
    }
}

impl std::error::Error for PoolExhausted {}

struct PoolInner {
    name: String,
    capacity: usize,
    in_use: AtomicUsize,
    /// High-water mark of simultaneous live mbufs, for diagnostics.
    peak: AtomicUsize,
    failed_allocs: AtomicUsize,
    /// When set, [`Mempool::alloc`] always takes the dedicated
    /// guard-allocation path instead of riding the frame's storage
    /// refcount. This reproduces the pre-optimization per-alloc cost and
    /// exists so the throughput benchmarks can compare against it.
    guard_slots: AtomicBool,
}

/// A fixed-capacity message-buffer pool.
///
/// ```
/// use choir_dpdk::Mempool;
/// use choir_packet::Frame;
/// use bytes::Bytes;
///
/// let pool = Mempool::new("demo", 2);
/// let a = pool.alloc(Frame::new(Bytes::from_static(b"pkt"))).unwrap();
/// let b = a.clone();            // recording-style retain: same slot
/// assert_eq!(pool.in_use(), 1);
/// drop((a, b));
/// assert_eq!(pool.in_use(), 0);
/// ```
///
/// Cheap to clone (handle semantics); all clones share the same slots.
#[derive(Clone)]
pub struct Mempool {
    inner: Arc<PoolInner>,
}

impl Mempool {
    /// A pool named `name` with `capacity` mbuf slots.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(name: impl Into<String>, capacity: usize) -> Self {
        assert!(capacity > 0, "mempool capacity must be positive");
        Mempool {
            inner: Arc::new(PoolInner {
                name: name.into(),
                capacity,
                in_use: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
                failed_allocs: AtomicUsize::new(0),
                guard_slots: AtomicBool::new(false),
            }),
        }
    }

    /// A pool sized like the paper's minimum deployment: 1 GB of RAM at
    /// 2 KB per mbuf slot (the conventional DPDK dataroom for 1500-byte
    /// frames).
    pub fn one_gigabyte(name: impl Into<String>) -> Self {
        Self::new(name, (1 << 30) / 2048)
    }

    /// Wrap `frame` in an [`Mbuf`], taking one pool slot.
    ///
    /// On the hot path this allocates nothing: the slot's release hook
    /// is folded into the frame's existing refcounted storage (the
    /// pool's own `Arc` is the hook, so attaching is a refcount bump).
    /// Frames over static or already-hooked storage fall back to a
    /// dedicated guard allocation with identical accounting.
    pub fn alloc(&self, frame: Frame) -> Result<Mbuf, PoolExhausted> {
        // Optimistically take a slot, back out on overflow. Relaxed is
        // sufficient: the counter is a quota, not a synchronization edge.
        let prev = self.inner.in_use.fetch_add(1, Ordering::Relaxed);
        if prev >= self.inner.capacity {
            self.inner.in_use.fetch_sub(1, Ordering::Relaxed);
            self.inner.failed_allocs.fetch_add(1, Ordering::Relaxed);
            return Err(PoolExhausted);
        }
        self.inner.peak.fetch_max(prev + 1, Ordering::Relaxed);
        let hooked = !self.inner.guard_slots.load(Ordering::Relaxed) && {
            let hook: Arc<dyn StorageHook> = Arc::clone(&self.inner) as Arc<dyn StorageHook>;
            frame.data.try_attach_hook(hook)
        };
        let slot = if hooked {
            SlotRef::Storage
        } else {
            SlotRef::Guard(Arc::new(Slot {
                pool: Arc::clone(&self.inner),
            }))
        };
        Ok(Mbuf {
            frame,
            rx_ts_ps: None,
            slot,
        })
    }

    /// Pool name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Force every future [`alloc`](Self::alloc) onto the dedicated
    /// guard-allocation path (one `Arc<Slot>` per mbuf) instead of riding
    /// the frame's storage refcount. Accounting is identical either way;
    /// this reproduces the pre-optimization per-alloc heap cost so the
    /// throughput benchmarks have an honest baseline.
    pub fn set_guard_slots(&self, on: bool) {
        self.inner.guard_slots.store(on, Ordering::Relaxed);
    }

    /// Currently-occupied slots.
    pub fn in_use(&self) -> usize {
        self.inner.in_use.load(Ordering::Relaxed)
    }

    /// Free slots remaining.
    pub fn available(&self) -> usize {
        self.capacity().saturating_sub(self.in_use())
    }

    /// High-water mark of simultaneous live mbufs.
    pub fn peak(&self) -> usize {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// How many allocations have failed due to exhaustion.
    pub fn failed_allocs(&self) -> usize {
        self.inner.failed_allocs.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Mempool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mempool")
            .field("name", &self.inner.name)
            .field("capacity", &self.inner.capacity)
            .field("in_use", &self.in_use())
            .finish()
    }
}

/// The pool itself acts as the storage release hook: when the last
/// handle to an mbuf's frame storage drops, the slot returns. This is
/// the slot's drop path for [`SlotRef::Storage`] mbufs.
impl StorageHook for PoolInner {
    fn on_storage_release(&self) {
        self.in_use.fetch_sub(1, Ordering::Relaxed);
    }
}

/// RAII slot guard; returns the slot when the last clone drops.
/// Fallback for frames whose storage cannot carry the pool hook.
struct Slot {
    pool: Arc<PoolInner>,
}

impl Drop for Slot {
    fn drop(&mut self) {
        self.pool.in_use.fetch_sub(1, Ordering::Relaxed);
    }
}

/// How an [`Mbuf`] tracks its pool slot.
#[derive(Clone)]
enum SlotRef {
    /// Accounting rides the frame's own storage refcount (no per-mbuf
    /// allocation); the slot returns when the storage is released.
    Storage,
    /// Dedicated guard (static or already-hooked frame storage).
    Guard(Arc<Slot>),
}

/// A message buffer: a frame plus its pool bookkeeping.
///
/// Clones share the slot (refcounted), mirroring DPDK's
/// `rte_mbuf_refcnt_update` pattern that Choir's no-copy recording relies
/// on.
#[derive(Clone)]
pub struct Mbuf {
    /// The packet data.
    pub frame: Frame,
    /// Hardware receive timestamp in picoseconds since the capture epoch,
    /// stamped by the NIC model on delivery (like DPDK's mbuf timestamp
    /// dynamic field). `None` for locally-originated packets.
    pub rx_ts_ps: Option<u64>,
    slot: SlotRef,
}

impl Mbuf {
    /// An mbuf not associated with any pool (for tests and synthetic
    /// traffic where accounting does not matter).
    pub fn unpooled(frame: Frame) -> Self {
        // A throwaway one-slot pool keeps the type uniform.
        static UNPOOLED: std::sync::OnceLock<Mempool> = std::sync::OnceLock::new();
        let pool = UNPOOLED.get_or_init(|| Mempool::new("unpooled", usize::MAX >> 1));
        pool.alloc(frame).expect("unpooled pool cannot exhaust")
    }

    /// Frame length in bytes.
    pub fn len(&self) -> usize {
        self.frame.len()
    }

    /// True when the frame holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.frame.is_empty()
    }

    /// How many owners (clones) share this mbuf's slot.
    pub fn refcount(&self) -> usize {
        match &self.slot {
            SlotRef::Storage => self.frame.data.storage_refcount(),
            SlotRef::Guard(g) => Arc::strong_count(g),
        }
    }
}

impl fmt::Debug for Mbuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mbuf")
            .field("len", &self.len())
            .field("refcount", &self.refcount())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn frame(n: usize) -> Frame {
        Frame::new(Bytes::from(vec![0u8; n]))
    }

    #[test]
    fn alloc_and_drop_returns_slot() {
        let pool = Mempool::new("t", 2);
        let a = pool.alloc(frame(10)).unwrap();
        assert_eq!(pool.in_use(), 1);
        let b = pool.alloc(frame(10)).unwrap();
        assert_eq!(pool.in_use(), 2);
        assert_eq!(pool.available(), 0);
        drop(a);
        assert_eq!(pool.in_use(), 1);
        drop(b);
        assert_eq!(pool.in_use(), 0);
        assert_eq!(pool.peak(), 2);
    }

    #[test]
    fn exhaustion_fails_cleanly() {
        let pool = Mempool::new("t", 1);
        let _a = pool.alloc(frame(1)).unwrap();
        assert!(matches!(pool.alloc(frame(1)), Err(PoolExhausted)));
        assert_eq!(pool.failed_allocs(), 1);
        // Failed alloc must not leak a slot.
        assert_eq!(pool.in_use(), 1);
    }

    #[test]
    fn clone_shares_slot() {
        let pool = Mempool::new("t", 1);
        let a = pool.alloc(frame(4)).unwrap();
        let b = a.clone();
        // Two handles, one slot: this is the no-copy recording property.
        assert_eq!(pool.in_use(), 1);
        assert_eq!(a.refcount(), 2);
        drop(a);
        assert_eq!(pool.in_use(), 1);
        drop(b);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn clone_shares_frame_bytes() {
        let pool = Mempool::new("t", 4);
        let a = pool.alloc(frame(100)).unwrap();
        let b = a.clone();
        assert_eq!(a.frame.data.as_ptr(), b.frame.data.as_ptr());
    }

    #[test]
    fn slot_rides_frame_storage_refcount() {
        // Hot path: the slot is folded into the frame's storage, so a
        // surviving view of the bytes (a recording's retain) keeps the
        // slot occupied even after every Mbuf handle is gone.
        let pool = Mempool::new("t", 2);
        let a = pool.alloc(frame(16)).unwrap();
        let view = a.frame.data.clone();
        drop(a);
        assert_eq!(pool.in_use(), 1);
        drop(view);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn static_frames_fall_back_to_guard_accounting() {
        let pool = Mempool::new("t", 2);
        let a = pool
            .alloc(Frame::new(Bytes::from_static(b"static pkt")))
            .unwrap();
        assert_eq!(pool.in_use(), 1);
        let b = a.clone();
        assert_eq!(a.refcount(), 2);
        assert_eq!(pool.in_use(), 1);
        drop((a, b));
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn already_hooked_storage_falls_back_to_guard() {
        // Two mbufs over the same storage: the second alloc cannot
        // attach a second hook and must guard its own slot; each slot
        // still returns exactly once.
        let pool = Mempool::new("t", 4);
        let a = pool.alloc(frame(8)).unwrap();
        let b = pool.alloc(a.frame.clone()).unwrap();
        assert_eq!(pool.in_use(), 2);
        drop(b);
        assert_eq!(pool.in_use(), 1);
        drop(a);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn one_gigabyte_sizing() {
        let pool = Mempool::one_gigabyte("gig");
        assert_eq!(pool.capacity(), 524_288);
    }

    #[test]
    fn concurrent_alloc_free_respects_capacity() {
        let pool = Mempool::new("mt", 64);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let pool = pool.clone();
                s.spawn(move || {
                    let mut held = Vec::new();
                    for i in 0..1000 {
                        if let Ok(m) = pool.alloc(frame(8)) {
                            held.push(m);
                        }
                        if i % 3 == 0 {
                            held.pop();
                        }
                        // The raw counter may transiently overshoot
                        // capacity while racing allocs back out of their
                        // optimistic fetch_add; only successful allocs
                        // (held mbufs, and the peak below) are bounded.
                        assert!(held.len() <= pool.capacity());
                    }
                });
            }
        });
        assert_eq!(pool.in_use(), 0);
        assert!(pool.peak() <= 64);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        Mempool::new("z", 0);
    }

    #[test]
    fn unpooled_mbuf_works() {
        let m = Mbuf::unpooled(frame(3));
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }
}
