//! The evictable trial store: the TrialIndex cache generalized for a
//! long-running daemon.
//!
//! The all-pairs engine's per-trial `TrialIndex` cache assumes every
//! trial lives in memory for the run's duration — fine for a one-shot
//! analysis, impossible for a daemon holding thousands of streams
//! across tenants. [`TrialStore`] keeps each stream's observation
//! vector under a per-store memory budget: least-recently-used trials
//! are *evicted* to a file-backed spill directory (24 bytes per
//! observation, little-endian) and transparently *rebuilt on demand*
//! when next touched. Eviction is invisible to every consumer — a
//! reloaded trial is byte-identical to the evicted one, which the
//! service proptests gate on.
//!
//! The spill files double as the durable trial state for the daemon's
//! checkpoints: [`TrialStore::flush_all`] writes every dirty resident
//! trial, so after a crash the store reloads from disk and the
//! journal replay appends only the post-checkpoint tail
//! ([`TrialStore::truncate`] first cuts each trial back to its
//! checkpointed length).

use std::collections::HashMap;
use std::fs;
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use choir_core::metrics::{Observation, Trial};
use choir_core::obs;
use choir_packet::PacketId;

/// In-memory footprint of one observation: a 16-byte identity plus an
/// 8-byte timestamp. The budget arithmetic uses this, not allocator
/// truth — it is deterministic and platform-independent.
pub const OBS_BYTES: u64 = 24;

/// A store failure: spill-dir I/O or a corrupt spill file.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure under the spill directory.
    Io(std::io::Error),
    /// A spill file's length is not a whole number of records, or it
    /// holds fewer records than the store's accounting says it must.
    Corrupt { key: String, detail: String },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "trial store I/O failed: {e}"),
            StoreError::Corrupt { key, detail } => {
                write!(f, "trial store spill for `{key}` is corrupt: {detail}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Aggregate store accounting, served over the wire for the RSS gate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Observation bytes currently resident (the budgeted quantity).
    pub resident_bytes: u64,
    /// Configured budget.
    pub budget_bytes: u64,
    /// Trials evicted to spill since the store was opened.
    pub evictions: u64,
    /// Trials rebuilt from spill since the store was opened.
    pub reloads: u64,
    /// Trials currently tracked (resident or spilled).
    pub trials: u64,
    /// Trials currently spilled out of memory.
    pub spilled: u64,
}

struct Slot {
    /// Resident observations, `None` while evicted.
    obs: Option<Vec<Observation>>,
    /// Authoritative record count (resident or not).
    len: u64,
    /// Records of the in-memory vector already safe in the spill file.
    /// `< len` (with `obs` resident) means the tail is dirty.
    persisted: u64,
    /// LRU clock value at last touch.
    used: u64,
}

/// The evictable trial store. Keys are `tenant/stream` strings; the
/// daemon validates name characters before they reach here, so keys
/// map to spill file names without escaping.
pub struct TrialStore {
    budget: u64,
    spill_dir: PathBuf,
    slots: HashMap<String, Slot>,
    clock: u64,
    resident_bytes: u64,
    evictions: u64,
    reloads: u64,
}

fn spill_path(dir: &Path, key: &str) -> PathBuf {
    dir.join(format!("{}.trial", key.replace('/', "__")))
}

impl TrialStore {
    /// Open a store over `spill_dir` (created if missing) with the
    /// given resident-byte budget. `budget_bytes == 0` means
    /// "everything spills as soon as it is not in use" and still works.
    pub fn open(spill_dir: impl Into<PathBuf>, budget_bytes: u64) -> Result<Self, StoreError> {
        let spill_dir = spill_dir.into();
        fs::create_dir_all(&spill_dir)?;
        Ok(TrialStore {
            budget: budget_bytes,
            spill_dir,
            slots: HashMap::new(),
            clock: 0,
            resident_bytes: 0,
            evictions: 0,
            reloads: 0,
        })
    }

    /// The configured budget.
    pub fn budget_bytes(&self) -> u64 {
        self.budget
    }

    /// Observation bytes currently resident.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Aggregate accounting.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            resident_bytes: self.resident_bytes,
            budget_bytes: self.budget,
            evictions: self.evictions,
            reloads: self.reloads,
            trials: self.slots.len() as u64,
            spilled: self.slots.values().filter(|s| s.obs.is_none()).count() as u64,
        }
    }

    /// Authoritative record count for a key (0 if unknown).
    pub fn len(&self, key: &str) -> u64 {
        self.slots.get(key).map_or(0, |s| s.len)
    }

    /// `true` when no trial is tracked.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Every tracked key, sorted (deterministic iteration for
    /// checkpoints and matrix labels).
    pub fn keys(&self) -> Vec<String> {
        let mut ks: Vec<String> = self.slots.keys().cloned().collect();
        ks.sort();
        ks
    }

    fn touch(slot: &mut Slot, clock: &mut u64) {
        *clock += 1;
        slot.used = *clock;
    }

    /// Append observations to a trial, creating it on first touch.
    /// The trial is made resident first (rebuilt from spill if
    /// evicted), and the budget is re-enforced afterwards — possibly
    /// evicting *other* trials, never the one just appended to.
    pub fn append(&mut self, key: &str, recs: &[Observation]) -> Result<(), StoreError> {
        self.ensure_resident(key)?;
        let slot = self.slots.get_mut(key).expect("ensured resident");
        let obs = slot.obs.as_mut().expect("ensured resident");
        obs.extend_from_slice(recs);
        slot.len += recs.len() as u64;
        Self::touch(slot, &mut self.clock);
        self.resident_bytes += recs.len() as u64 * OBS_BYTES;
        self.enforce_budget(Some(key))?;
        Ok(())
    }

    /// Borrow a trial's observations, rebuilding from spill on demand.
    /// Other trials may be evicted to make room for the reload.
    pub fn get(&mut self, key: &str) -> Result<&[Observation], StoreError> {
        self.ensure_resident(key)?;
        self.enforce_budget(Some(key))?;
        let slot = self.slots.get_mut(key).expect("ensured resident");
        Self::touch(slot, &mut self.clock);
        Ok(slot.obs.as_deref().expect("ensured resident"))
    }

    /// Materialize a trial as a [`Trial`] for the all-pairs engine.
    pub fn trial(&mut self, key: &str) -> Result<Trial, StoreError> {
        let obs = self.get(key)?;
        let mut t = Trial::new();
        for o in obs {
            t.push(o.id, o.t_ps);
        }
        Ok(t)
    }

    /// Cut a trial back to `n` records (recovery: the checkpoint knows
    /// `n`, the spill file may hold a longer post-checkpoint tail).
    /// No-op when the trial is already at or below `n`.
    pub fn truncate(&mut self, key: &str, n: u64) -> Result<(), StoreError> {
        if self.len(key) <= n {
            return Ok(());
        }
        self.ensure_resident(key)?;
        let slot = self.slots.get_mut(key).expect("ensured resident");
        let obs = slot.obs.as_mut().expect("ensured resident");
        let dropped = obs.len() as u64 - n;
        obs.truncate(n as usize);
        slot.len = n;
        slot.persisted = slot.persisted.min(n);
        self.resident_bytes -= dropped * OBS_BYTES;
        // The spill file may still hold the longer tail; rewrite it so
        // disk never disagrees with accounting.
        self.write_spill(key)?;
        Ok(())
    }

    /// Drop a trial and its spill file.
    pub fn remove(&mut self, key: &str) -> Result<(), StoreError> {
        if let Some(slot) = self.slots.remove(key) {
            if let Some(obs) = slot.obs {
                self.resident_bytes -= obs.len() as u64 * OBS_BYTES;
            }
            let p = spill_path(&self.spill_dir, key);
            if p.exists() {
                fs::remove_file(p)?;
            }
        }
        Ok(())
    }

    /// Flush every dirty resident trial to its spill file (trials stay
    /// resident). After this, disk holds every record the store knows
    /// about — the daemon calls it at checkpoint time.
    pub fn flush_all(&mut self) -> Result<(), StoreError> {
        let keys: Vec<String> = self
            .slots
            .iter()
            .filter(|(_, s)| s.obs.is_some() && s.persisted < s.len)
            .map(|(k, _)| k.clone())
            .collect();
        for k in keys {
            self.write_spill(&k)?;
        }
        Ok(())
    }

    /// Adopt a trial already on disk (daemon restart): trust the spill
    /// file for `count` records without loading it yet.
    pub fn adopt(&mut self, key: &str, count: u64) -> Result<(), StoreError> {
        if count == 0 {
            // Nothing durable to trust — start the trial empty and
            // resident (there may be no spill file at all yet).
            self.slots.insert(
                key.to_string(),
                Slot {
                    obs: Some(Vec::new()),
                    len: 0,
                    persisted: 0,
                    used: self.clock,
                },
            );
            return Ok(());
        }
        let p = spill_path(&self.spill_dir, key);
        let on_disk = if p.exists() { fs::metadata(&p)?.len() / OBS_BYTES } else { 0 };
        if on_disk < count {
            return Err(StoreError::Corrupt {
                key: key.to_string(),
                detail: format!("spill holds {on_disk} records, checkpoint expects {count}"),
            });
        }
        self.slots.insert(
            key.to_string(),
            Slot {
                obs: None,
                len: count,
                persisted: count,
                used: self.clock,
            },
        );
        Ok(())
    }

    fn ensure_resident(&mut self, key: &str) -> Result<(), StoreError> {
        match self.slots.get(key) {
            None => {
                self.slots.insert(
                    key.to_string(),
                    Slot {
                        obs: Some(Vec::new()),
                        len: 0,
                        persisted: 0,
                        used: self.clock,
                    },
                );
                Ok(())
            }
            Some(s) if s.obs.is_some() => Ok(()),
            Some(_) => self.reload(key),
        }
    }

    fn reload(&mut self, key: &str) -> Result<(), StoreError> {
        let want = self.slots[key].len;
        let p = spill_path(&self.spill_dir, key);
        let mut raw = Vec::new();
        fs::File::open(&p)?.read_to_end(&mut raw)?;
        if !(raw.len() as u64).is_multiple_of(OBS_BYTES) {
            return Err(StoreError::Corrupt {
                key: key.to_string(),
                detail: format!("{} bytes is not a whole record count", raw.len()),
            });
        }
        let have = raw.len() as u64 / OBS_BYTES;
        if have < want {
            return Err(StoreError::Corrupt {
                key: key.to_string(),
                detail: format!("spill holds {have} records, store expects {want}"),
            });
        }
        // A longer file is fine (pre-crash tail beyond the adopted
        // checkpoint count); only the accounted prefix is loaded.
        let mut obs = Vec::with_capacity(want as usize);
        for i in 0..want as usize {
            let b = &raw[i * OBS_BYTES as usize..(i + 1) * OBS_BYTES as usize];
            let id = u128::from_le_bytes(b[..16].try_into().expect("16-byte id"));
            let t_ps = u64::from_le_bytes(b[16..24].try_into().expect("8-byte ts"));
            obs.push(Observation {
                id: PacketId(id),
                t_ps,
            });
        }
        let slot = self.slots.get_mut(key).expect("caller checked");
        slot.obs = Some(obs);
        slot.persisted = want;
        self.resident_bytes += want * OBS_BYTES;
        self.reloads += 1;
        if obs::is_enabled() {
            obs::counter_inc("service.store.reloads");
        }
        Ok(())
    }

    fn write_spill(&mut self, key: &str) -> Result<(), StoreError> {
        let slot = self.slots.get(key).expect("flush of unknown key");
        let obs = slot.obs.as_ref().expect("flush of evicted trial");
        let mut raw = Vec::with_capacity(obs.len() * OBS_BYTES as usize);
        for o in obs {
            raw.extend_from_slice(&o.id.0.to_le_bytes());
            raw.extend_from_slice(&o.t_ps.to_le_bytes());
        }
        let p = spill_path(&self.spill_dir, key);
        let tmp = p.with_extension("trial.tmp");
        fs::File::create(&tmp)?.write_all(&raw)?;
        fs::rename(&tmp, &p)?;
        let slot = self.slots.get_mut(key).expect("flush of unknown key");
        slot.persisted = slot.len;
        Ok(())
    }

    /// Evict least-recently-used trials until resident bytes fit the
    /// budget. `keep` (the trial the caller is actively using) is never
    /// evicted, so a single over-budget trial stays resident — the
    /// budget bounds everything evictable.
    fn enforce_budget(&mut self, keep: Option<&str>) -> Result<(), StoreError> {
        while self.resident_bytes > self.budget {
            let victim = self
                .slots
                .iter()
                .filter(|(k, s)| s.obs.is_some() && keep != Some(k.as_str()))
                .min_by_key(|(_, s)| s.used)
                .map(|(k, _)| k.clone());
            let Some(victim) = victim else { break };
            self.evict(&victim)?;
        }
        Ok(())
    }

    fn evict(&mut self, key: &str) -> Result<(), StoreError> {
        let slot = self.slots.get(key).expect("evict of unknown key");
        if slot.persisted < slot.len {
            self.write_spill(key)?;
        }
        let slot = self.slots.get_mut(key).expect("evict of unknown key");
        let obs = slot.obs.take().expect("evict of non-resident trial");
        self.resident_bytes -= obs.len() as u64 * OBS_BYTES;
        self.evictions += 1;
        if obs::is_enabled() {
            obs::counter_inc("service.store.evictions");
            obs::gauge_set("service.store.resident_bytes", self.resident_bytes);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "choir-store-{name}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&p);
        p
    }

    fn obs_seq(base: u64, n: u64) -> Vec<Observation> {
        (0..n)
            .map(|i| Observation {
                id: PacketId(((base + i) as u128) << 32 | 7),
                t_ps: base * 1_000 + i * 37,
            })
            .collect()
    }

    #[test]
    fn append_get_roundtrip_without_eviction() {
        let mut st = TrialStore::open(tmp("plain"), 1 << 20).unwrap();
        let a = obs_seq(0, 100);
        st.append("t0/a", &a[..60]).unwrap();
        st.append("t0/a", &a[60..]).unwrap();
        assert_eq!(st.get("t0/a").unwrap(), &a[..]);
        assert_eq!(st.len("t0/a"), 100);
        assert_eq!(st.resident_bytes(), 100 * OBS_BYTES);
        assert_eq!(st.stats().evictions, 0);
    }

    #[test]
    fn eviction_and_reload_are_invisible() {
        // Budget fits ~one trial: the second append evicts the first.
        let mut st = TrialStore::open(tmp("evict"), 150 * OBS_BYTES).unwrap();
        let a = obs_seq(0, 100);
        let b = obs_seq(1_000, 100);
        st.append("t0/a", &a).unwrap();
        st.append("t0/b", &b).unwrap();
        let s = st.stats();
        assert!(s.evictions >= 1, "budget must have forced an eviction");
        assert!(s.resident_bytes <= s.budget_bytes);
        // Reload is byte-identical.
        assert_eq!(st.get("t0/a").unwrap(), &a[..]);
        assert_eq!(st.get("t0/b").unwrap(), &b[..]);
        assert!(st.stats().reloads >= 1);
    }

    #[test]
    fn append_after_eviction_appends_to_reloaded_trial() {
        let mut st = TrialStore::open(tmp("appendback"), 80 * OBS_BYTES).unwrap();
        let a = obs_seq(0, 60);
        let b = obs_seq(500, 60);
        st.append("t0/a", &a).unwrap();
        st.append("t0/b", &b).unwrap(); // evicts a
        let a2 = obs_seq(9_000, 10);
        st.append("t0/a", &a2).unwrap(); // reloads a, appends
        let mut want = a.clone();
        want.extend_from_slice(&a2);
        assert_eq!(st.get("t0/a").unwrap(), &want[..]);
    }

    #[test]
    fn over_budget_single_trial_stays_resident() {
        let mut st = TrialStore::open(tmp("big"), 10 * OBS_BYTES).unwrap();
        let a = obs_seq(0, 100);
        st.append("t0/a", &a).unwrap();
        // Nothing else to evict: the active trial is kept.
        assert_eq!(st.get("t0/a").unwrap(), &a[..]);
        assert_eq!(st.stats().spilled, 0);
    }

    #[test]
    fn flush_adopt_truncate_recovery_cycle() {
        let dir = tmp("recover");
        let a = obs_seq(0, 90);
        {
            let mut st = TrialStore::open(&dir, 1 << 20).unwrap();
            // Checkpoint at 50 records, then 40 more arrive (journaled
            // but not checkpointed), then flush as an eviction would.
            st.append("t0/a", &a[..50]).unwrap();
            st.flush_all().unwrap();
            st.append("t0/a", &a[50..]).unwrap();
            st.flush_all().unwrap();
        }
        // Restart: the checkpoint says 50; the file holds 90.
        let mut st = TrialStore::open(&dir, 1 << 20).unwrap();
        st.adopt("t0/a", 50).unwrap();
        assert_eq!(st.get("t0/a").unwrap(), &a[..50]);
        // Journal replay re-appends the tail.
        st.append("t0/a", &a[50..]).unwrap();
        assert_eq!(st.get("t0/a").unwrap(), &a[..]);
    }

    #[test]
    fn truncate_rewrites_spill() {
        let dir = tmp("trunc");
        let a = obs_seq(0, 30);
        let mut st = TrialStore::open(&dir, 1 << 20).unwrap();
        st.append("t0/a", &a).unwrap();
        st.truncate("t0/a", 12).unwrap();
        assert_eq!(st.get("t0/a").unwrap(), &a[..12]);
        // The spill file agrees.
        let p = spill_path(&dir, "t0/a");
        assert_eq!(fs::metadata(p).unwrap().len(), 12 * OBS_BYTES);
    }

    #[test]
    fn adopt_refuses_short_spill() {
        let dir = tmp("short");
        let mut st = TrialStore::open(&dir, 1 << 20).unwrap();
        st.append("t0/a", &obs_seq(0, 5)).unwrap();
        st.flush_all().unwrap();
        drop(st);
        let mut st = TrialStore::open(&dir, 1 << 20).unwrap();
        let err = st.adopt("t0/a", 9).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    }

    #[test]
    fn remove_deletes_slot_and_file() {
        let dir = tmp("rm");
        let mut st = TrialStore::open(&dir, 1 << 20).unwrap();
        st.append("t0/a", &obs_seq(0, 8)).unwrap();
        st.flush_all().unwrap();
        st.remove("t0/a").unwrap();
        assert_eq!(st.len("t0/a"), 0);
        assert!(!spill_path(&dir, "t0/a").exists());
        assert_eq!(st.resident_bytes(), 0);
    }

    #[test]
    fn trial_materialization_matches_observations() {
        let mut st = TrialStore::open(tmp("trial"), 1 << 20).unwrap();
        let a = obs_seq(3, 40);
        st.append("t0/a", &a).unwrap();
        let t = st.trial("t0/a").unwrap();
        assert_eq!(t.len(), 40);
        assert_eq!(t.observations(), &a[..]);
    }
}
