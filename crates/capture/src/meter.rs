//! Live rate telemetry: windowed packet/bit rates over a capture.
//!
//! The §7.1 experiment watches the co-tenant's throughput "bounce between
//! 35 Gbps and 50 Gbps, mostly around 40 Gbps" — that observation needs a
//! windowed rate meter, which this module provides: arrivals are bucketed
//! into fixed windows, and per-window pps/bps series come out.

/// Windowed packet/byte rate accumulator.
#[derive(Debug, Clone)]
pub struct RateMeter {
    window_ps: u64,
    /// (packets, wire bytes) per window, indexed by window number.
    windows: Vec<(u64, u64)>,
}

impl RateMeter {
    /// A meter bucketing arrivals into windows of `window_ps`.
    ///
    /// # Panics
    /// Panics if the window is zero.
    pub fn new(window_ps: u64) -> Self {
        assert!(window_ps > 0, "window must be positive");
        RateMeter {
            window_ps,
            windows: Vec::new(),
        }
    }

    /// Record one packet of `wire_bytes` at absolute time `t_ps`.
    pub fn record(&mut self, t_ps: u64, wire_bytes: usize) {
        let idx = (t_ps / self.window_ps) as usize;
        if idx >= self.windows.len() {
            self.windows.resize(idx + 1, (0, 0));
        }
        let w = &mut self.windows[idx];
        w.0 += 1;
        w.1 += wire_bytes as u64;
    }

    /// The configured window length in ps.
    pub fn window_ps(&self) -> u64 {
        self.window_ps
    }

    /// Number of windows observed (including empty interior ones).
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Packets per second in window `i`.
    pub fn pps(&self, i: usize) -> f64 {
        let secs = self.window_ps as f64 / 1e12;
        self.windows.get(i).map_or(0.0, |w| w.0 as f64 / secs)
    }

    /// Wire bits per second in window `i`.
    pub fn bps(&self, i: usize) -> f64 {
        let secs = self.window_ps as f64 / 1e12;
        self.windows.get(i).map_or(0.0, |w| w.1 as f64 * 8.0 / secs)
    }

    /// (min, mean, max) of the per-window bit rate over non-empty
    /// leading/trailing-trimmed windows — the "bounced between 35 and 50,
    /// mostly around 40" summary.
    pub fn bps_summary(&self) -> (f64, f64, f64) {
        let first = self.windows.iter().position(|w| w.0 > 0);
        let last = self.windows.iter().rposition(|w| w.0 > 0);
        let (Some(first), Some(last)) = (first, last) else {
            return (0.0, 0.0, 0.0);
        };
        let mut min = f64::INFINITY;
        let mut max: f64 = 0.0;
        let mut sum = 0.0;
        let n = last - first + 1;
        for i in first..=last {
            let b = self.bps(i);
            min = min.min(b);
            max = max.max(b);
            sum += b;
        }
        (min, sum / n as f64, max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_cbr_rate() {
        // 40 Gbps of 1424 wire bytes: 284.8 ns spacing.
        let mut m = RateMeter::new(1_000_000_000); // 1 ms windows
        let mut t = 0u64;
        while t < 3_000_000_000 {
            m.record(t, 1424);
            t += 284_800;
        }
        assert_eq!(m.len(), 3);
        for i in 0..3 {
            let gbps = m.bps(i) / 1e9;
            assert!((gbps - 40.0).abs() < 0.1, "window {i}: {gbps}");
            let mpps = m.pps(i) / 1e6;
            assert!((mpps - 3.51).abs() < 0.05, "window {i}: {mpps}");
        }
    }

    #[test]
    fn bouncing_rate_summary() {
        let mut m = RateMeter::new(1_000_000);
        // Window 0: 2 packets; window 2: 6 packets (window 1 empty).
        m.record(100, 1000);
        m.record(200, 1000);
        for k in 0..6 {
            m.record(2_000_000 + k * 10, 1000);
        }
        let (min, mean, max) = m.bps_summary();
        assert_eq!(min, 0.0, "the empty middle window counts");
        assert!(max > min);
        assert!(mean > 0.0 && mean < max);
    }

    #[test]
    fn empty_meter() {
        let m = RateMeter::new(1_000);
        assert!(m.is_empty());
        assert_eq!(m.bps_summary(), (0.0, 0.0, 0.0));
        assert_eq!(m.pps(5), 0.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        RateMeter::new(0);
    }
}
