//! In-band control-plane framing.
//!
//! Choir middleboxes are "joined out-of-band for inter-communication and
//! receiving user commands" (§4), but can also "run with just the 2
//! bridged interfaces if the control signals run in-band, as we do in our
//! evaluations to conserve resources" (§5). Out-of-band delivery is the
//! [`choir_dpdk::App::on_control`] callback; this module provides the
//! in-band path: control messages encoded as Ethernet frames with the
//! Choir control EtherType, intercepted (never forwarded) by the
//! middlebox.
//!
//! Frame layout after the 14-byte Ethernet header:
//!
//! ```text
//! offset  size  field
//! 0       4     magic 0x43484F43 ("CHOC")
//! 4       1     opcode
//! 5       8     argument (big-endian u64)
//! ```

use bytes::Bytes;
use choir_dpdk::ControlMsg;
use choir_packet::{EtherType, EthernetHeader, Frame, MacAddr};

/// Magic marking a Choir control payload.
pub const CONTROL_MAGIC: u32 = 0x4348_4F43;

const OP_START_RECORD: u8 = 1;
const OP_STOP_RECORD: u8 = 2;
const OP_SCHEDULE_REPLAY: u8 = 3;
const OP_ABORT_REPLAY: u8 = 4;
const OP_CUSTOM: u8 = 5;

/// Minimum control frame length: Ethernet header + magic + opcode + arg.
pub const CONTROL_FRAME_LEN: usize = EthernetHeader::LEN + 4 + 1 + 8;

/// Encode a control message as an in-band Ethernet frame.
pub fn encode_control(msg: &ControlMsg, src: MacAddr, dst: MacAddr) -> Frame {
    let (op, arg) = match *msg {
        ControlMsg::StartRecord => (OP_START_RECORD, 0),
        ControlMsg::StopRecord => (OP_STOP_RECORD, 0),
        ControlMsg::ScheduleReplay { start_wall_ns } => (OP_SCHEDULE_REPLAY, start_wall_ns),
        ControlMsg::AbortReplay => (OP_ABORT_REPLAY, 0),
        ControlMsg::Custom(v) => (OP_CUSTOM, v),
    };
    let mut buf = vec![0u8; CONTROL_FRAME_LEN];
    EthernetHeader {
        dst,
        src,
        ethertype: EtherType::ChoirControl as u16,
    }
    .write(&mut buf);
    buf[14..18].copy_from_slice(&CONTROL_MAGIC.to_be_bytes());
    buf[18] = op;
    buf[19..27].copy_from_slice(&arg.to_be_bytes());
    Frame::new(Bytes::from(buf))
}

/// True when the frame carries the Choir control EtherType.
pub fn is_control_frame(frame: &Frame) -> bool {
    EthernetHeader::parse(&frame.data)
        .map(|h| h.ethertype == EtherType::ChoirControl as u16)
        .unwrap_or(false)
}

/// Decode an in-band control frame; `None` for anything malformed.
pub fn decode_control(frame: &Frame) -> Option<ControlMsg> {
    if !is_control_frame(frame) || frame.data.len() < CONTROL_FRAME_LEN {
        return None;
    }
    let p = &frame.data[14..];
    if u32::from_be_bytes([p[0], p[1], p[2], p[3]]) != CONTROL_MAGIC {
        return None;
    }
    let arg = u64::from_be_bytes([p[5], p[6], p[7], p[8], p[9], p[10], p[11], p[12]]);
    match p[4] {
        OP_START_RECORD => Some(ControlMsg::StartRecord),
        OP_STOP_RECORD => Some(ControlMsg::StopRecord),
        OP_SCHEDULE_REPLAY => Some(ControlMsg::ScheduleReplay { start_wall_ns: arg }),
        OP_ABORT_REPLAY => Some(ControlMsg::AbortReplay),
        OP_CUSTOM => Some(ControlMsg::Custom(arg)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: ControlMsg) {
        let f = encode_control(&msg, MacAddr::local(1), MacAddr::local(2));
        assert!(is_control_frame(&f));
        assert_eq!(decode_control(&f), Some(msg));
    }

    #[test]
    fn all_messages_roundtrip() {
        roundtrip(ControlMsg::StartRecord);
        roundtrip(ControlMsg::StopRecord);
        roundtrip(ControlMsg::ScheduleReplay {
            start_wall_ns: 123_456_789_012,
        });
        roundtrip(ControlMsg::AbortReplay);
        roundtrip(ControlMsg::Custom(u64::MAX));
    }

    #[test]
    fn data_frames_are_not_control() {
        let b = choir_packet::FrameBuilder::new(100, 1, 2);
        let f = b.build_plain();
        assert!(!is_control_frame(&f));
        assert_eq!(decode_control(&f), None);
    }

    #[test]
    fn bad_magic_rejected() {
        let f = encode_control(&ControlMsg::StartRecord, MacAddr::local(1), MacAddr::local(2));
        let mut data = f.data.to_vec();
        data[14] ^= 0xff;
        assert_eq!(decode_control(&Frame::new(Bytes::from(data))), None);
    }

    #[test]
    fn bad_opcode_rejected() {
        let f = encode_control(&ControlMsg::StartRecord, MacAddr::local(1), MacAddr::local(2));
        let mut data = f.data.to_vec();
        data[18] = 99;
        assert_eq!(decode_control(&Frame::new(Bytes::from(data))), None);
    }

    #[test]
    fn short_frame_rejected() {
        let f = encode_control(&ControlMsg::StartRecord, MacAddr::local(1), MacAddr::local(2));
        let data = f.data.slice(..20);
        let short = Frame::new(data);
        assert_eq!(decode_control(&short), None);
    }
}
