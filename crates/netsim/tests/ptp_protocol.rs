//! PTP protocol integration: a grandmaster and two clients across a
//! switch, with asymmetric path jitter — the deployment shape FABRIC
//! uses (paper §2.2), run end to end over the simulated network.

use choir_netsim::clock::{NodeClock, PtpModel};
use choir_netsim::nic::{NicRxModel, NicTxModel};
use choir_netsim::ptp::{PtpClient, PtpGrandmaster};
use choir_netsim::rng::Jitter;
use choir_netsim::switchdev::{Switch, SwitchProfile};
use choir_netsim::time::{MS, NS, US};
use choir_netsim::{Sim, SimConfig};

/// Grandmaster + two clients through one switch. `jitter_b` adds poll
/// jitter only to client B's path.
fn ptp_domain(jitter_b: Jitter, run_ms: u64) -> (i64, i64, u64, u64) {
    let link = 100_000_000_000;
    let mut sim = Sim::new(SimConfig::default());

    let gm = sim.add_node(
        "gm",
        PtpGrandmaster::new(0, 500_000),
        NodeClock::ideal(1_000_000_000),
        Jitter::None,
    );
    let mut client_clock = NodeClock::ideal(1_000_000_000);
    client_clock.ptp = PtpModel {
        offset_ns: 25_000, // boots 25 us off
        drift_ns_per_s: 0.0,
    };
    let ca = sim.add_node(
        "client-a",
        PtpClient::new(0, 0.7),
        client_clock.clone(),
        Jitter::None,
    );
    let cb = sim.add_node("client-b", PtpClient::new(0, 0.7), client_clock, Jitter::None);

    let gp = sim.add_port(gm, NicTxModel::ideal(link), NicRxModel::ideal());
    let ap = sim.add_port(
        ca,
        NicTxModel::ideal(link),
        NicRxModel::ideal(),
    );
    let bp = sim.add_port(
        cb,
        NicTxModel::ideal(link),
        NicRxModel {
            deliver_latency: jitter_b,
            ..NicRxModel::ideal()
        },
    );

    // Broadcast fabric: gm's frames go to both clients (two mirror-ish
    // forwarding entries via a per-client ingress); client requests go
    // back to the gm.
    let sw = sim.add_switch(Switch::new(6, SwitchProfile::tofino2(link)), "sw");
    sim.connect_node_switch(gm, gp, sw, 0, 50 * NS);
    sim.connect_node_switch(ca, ap, sw, 1, 50 * NS);
    sim.connect_node_switch(cb, bp, sw, 2, 50 * NS);
    // gm ingress(0) forwards to client A and mirrors to client B — the
    // L2 broadcast a PTP domain relies on.
    sim.switch_map(sw, 0, 1);
    sim.switch_mirror(sw, 0, 2);
    // Client ingresses forward to the gm. (Ports 1 and 2 double as
    // ingress for the clients' Delay_Req frames.)
    sim.switch_map(sw, 1, 0);
    sim.switch_map(sw, 2, 0);

    sim.wake_app(gm, US);
    sim.run_until(run_ms * MS);
    let (oa, ra) = sim.with_app::<PtpClient, _>(ca, |c| {
        (c.last_offset_ns().unwrap_or(i64::MAX), c.rounds_completed())
    });
    let (ob, rb) = sim.with_app::<PtpClient, _>(cb, |c| {
        (c.last_offset_ns().unwrap_or(i64::MAX), c.rounds_completed())
    });
    (oa, ob, ra, rb)
}

#[test]
fn both_clients_converge_through_the_switch() {
    let (oa, ob, ra, rb) = ptp_domain(Jitter::None, 20);
    assert!(ra >= 10, "client A rounds {ra}");
    assert!(rb >= 10, "client B rounds {rb}");
    // Both started 25 us off; the servo pulls the residual to the
    // sub-microsecond regime the ptp_kvm patch claims (§2.2).
    assert!(oa.abs() < 1_000, "client A residual {oa} ns");
    assert!(ob.abs() < 1_000, "client B residual {ob} ns");
}

#[test]
fn path_jitter_degrades_only_the_jittery_client() {
    let (oa, ob, _, rb) = ptp_domain(
        Jitter::Exp {
            mean: 2.0 * US as f64,
        },
        30,
    );
    assert!(rb >= 5);
    assert!(
        ob.abs() > oa.abs(),
        "jittery client must sync worse: A {oa} ns vs B {ob} ns"
    );
}
