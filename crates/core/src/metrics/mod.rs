//! The consistency metric suite (paper §3).
//!
//! "A consistent network is *deterministic*, and therefore running the same
//! trial multiple times produces identical results across the network."
//! Four normalized variation metrics quantify how close to identical two
//! trials are; all lie in `[0, 1]` with 0 = perfectly consistent:
//!
//! | metric | meaning | module |
//! |---|---|---|
//! | `U` | missing/extra packets | [`uniqueness`] |
//! | `O` | reordering (edit-script move distance) | [`ordering`] |
//! | `L` | latency variation (jitter) | [`latency`] |
//! | `I` | inter-arrival-time variation | [`iat`] |
//!
//! [`kappa`] combines them into the compound score κ (Eq. 5). All metrics
//! are symmetric: `M(A,B) = M(B,A)`, a property the test suite checks both
//! with exact cases and property tests.

pub mod allpairs;
pub mod gapreplay;
pub mod histogram;
pub mod iat;
pub mod kappa;
pub mod latency;
pub mod matching;
pub mod ordering;
pub mod pair;
pub mod report;
pub mod reorder;
pub mod stats;
pub mod stream;
pub mod trial;
pub mod uniqueness;
pub mod windowed;

pub use allpairs::{
    all_pairs_blocked_with, all_pairs_serial, all_pairs_serial_with, all_pairs_sharded,
    all_pairs_sharded_with, default_block_size, EngineStats, IndexError, KappaMatrix,
    MatrixSummary, TrialIndex,
};
pub use gapreplay::{gapreplay_metrics, GapReplayMetrics};
pub use histogram::DeltaHistogram;
pub use kappa::{kappa_from_components, ConsistencyMetrics, KappaBounds, KappaConfig, Scaling};
pub use matching::Matching;
pub use ordering::EditScriptStats;
pub use pair::{PairAnalyzer, PairScratch};
pub use report::{
    trial_label, RecoveryReport, ReportError, RunReport, SimStatsReport, StageTimings,
    StreamReport, StreamRunTrail, TrialComparison,
};
pub use stream::{
    IncrementalComparison, KappaSnapshot, ResumeMismatch, Side, StreamCheckpoint, StreamConfig,
    StreamOutcome,
};
pub use trial::{Observation, Trial};
pub use windowed::{windowed_kappa, worst_window, WindowScore};

/// Compute all four metrics plus κ between two trials.
///
/// This is the everyday entry point — sugar for
/// [`PairAnalyzer::metrics`] with the paper's κ configuration. Build a
/// [`PairAnalyzer`] directly when you need intermediate artifacts (the
/// matching, the edit script, the full [`TrialComparison`], …).
pub fn compare(a: &Trial, b: &Trial) -> ConsistencyMetrics {
    PairAnalyzer::new(a, b).metrics()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_trials_are_perfectly_consistent() {
        let mut a = Trial::new();
        for i in 0..100u64 {
            a.push_tagged(0, 0, i, i * 284_800);
        }
        let m = compare(&a, &a.clone());
        assert_eq!(m.u, 0.0);
        assert_eq!(m.o, 0.0);
        assert_eq!(m.l, 0.0);
        assert_eq!(m.i, 0.0);
        assert_eq!(m.kappa, 1.0);
    }

    #[test]
    fn empty_trials_are_consistent() {
        let m = compare(&Trial::new(), &Trial::new());
        assert_eq!(m.kappa, 1.0);
    }

    #[test]
    fn disjoint_trials_have_u_one() {
        let mut a = Trial::new();
        let mut b = Trial::new();
        for i in 0..10u64 {
            a.push_tagged(0, 0, i, i * 1000);
            b.push_tagged(1, 0, i, i * 1000);
        }
        let m = compare(&a, &b);
        assert_eq!(m.u, 1.0);
        // No overlap: the other components are vacuously zero.
        assert_eq!(m.o, 0.0);
        assert_eq!(m.l, 0.0);
        assert_eq!(m.i, 0.0);
        assert!((m.kappa - 0.5).abs() < 1e-12);
    }
}
