//! Property-based tests of the sharded all-pairs consistency engine:
//! the sharded matrix must be bit-identical to the serial reference at
//! every shard count, and the `TrialIndex`-cached metric paths must
//! reproduce the uncached ones exactly, over randomized trials.

// The indexed-vs-uncached equivalences are stated kernel by kernel
// (`iat_full_indexed` vs `iat_full`, …), which only the deprecated free
// functions expose; `PairAnalyzer` sits on top of these same kernels.
#![allow(deprecated)]

use choir::metrics::allpairs::{
    all_pairs_blocked_with, all_pairs_serial, all_pairs_sharded, iat_full_indexed,
    latency_full_indexed, matching_indexed, TrialIndex,
};
use choir::metrics::KappaConfig;
use choir::metrics::iat::iat_full;
use choir::metrics::latency::latency_full;
use choir::metrics::matching::Matching;
use choir::metrics::report::TrialComparison;
use choir::metrics::{compare, Trial};
use proptest::prelude::*;

/// A random trial: a subset of sequence numbers 0..n (possibly shuffled,
/// possibly with duplicates) with non-decreasing timestamps.
fn arb_trial(max_len: usize) -> impl Strategy<Value = Trial> {
    (
        proptest::collection::vec(0u64..64, 0..max_len),
        proptest::collection::vec(0u64..5_000, 0..max_len),
    )
        .prop_map(|(seqs, mut gaps)| {
            gaps.resize(seqs.len(), 100);
            let mut t = Trial::new();
            let mut now = 0u64;
            for (s, g) in seqs.iter().zip(gaps) {
                now += g;
                t.push_tagged(0, 0, *s, now);
            }
            t
        })
}

/// A random *set* of trials for matrix-level properties.
fn arb_trials(max_trials: usize, max_len: usize) -> impl Strategy<Value = Vec<Trial>> {
    proptest::collection::vec(arb_trial(max_len), 2..max_trials)
}

/// Bit-level equality of everything the engine computes, excluding the
/// wall-clock timings (which legitimately differ between runs).
fn cells_bit_identical(x: &TrialComparison, y: &TrialComparison) -> bool {
    x.label == y.label
        && x.metrics.u.to_bits() == y.metrics.u.to_bits()
        && x.metrics.o.to_bits() == y.metrics.o.to_bits()
        && x.metrics.l.to_bits() == y.metrics.l.to_bits()
        && x.metrics.i.to_bits() == y.metrics.i.to_bits()
        && x.metrics.kappa.to_bits() == y.metrics.kappa.to_bits()
        && (x.a_len, x.b_len, x.common, x.missing, x.extra, x.moved)
            == (y.a_len, y.b_len, y.common, y.missing, y.extra, y.moved)
        && x.iat_within_10ns.to_bits() == y.iat_within_10ns.to_bits()
        && x.iat_abs_percentiles_ns == y.iat_abs_percentiles_ns
        && x.latency_abs_percentiles_ns == y.latency_abs_percentiles_ns
        && x.edit_stats == y.edit_stats
        && x.iat_hist.total() == y.iat_hist.total()
        && x.latency_hist.total() == y.latency_hist.total()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn sharded_matrix_is_bit_identical_to_serial(
        trials in arb_trials(7, 30),
    ) {
        let reference = all_pairs_serial(&trials);
        for &shards in &[1usize, 2, 8] {
            let m = all_pairs_sharded(&trials, shards).unwrap();
            prop_assert_eq!(&m.labels, &reference.labels);
            prop_assert_eq!(m.cells.len(), reference.cells.len());
            for (x, y) in m.cells.iter().zip(&reference.cells) {
                prop_assert!(
                    cells_bit_identical(x, y),
                    "shards={} cell {:?} != serial {:?}",
                    shards,
                    x.label,
                    y.label
                );
            }
        }
    }

    #[test]
    fn blocked_matrix_is_bit_identical_to_serial(
        trials in arb_trials(7, 30),
        block in 1usize..10,
        shards in 1usize..5,
    ) {
        // The cache-blocked scheduler must agree with the serial
        // reference at every block size and worker count, including
        // blocks larger than the trial count.
        let reference = all_pairs_serial(&trials);
        let (m, engine) =
            all_pairs_blocked_with(&trials, shards, block, &KappaConfig::paper()).unwrap();
        prop_assert!(engine.block_size >= 1);
        prop_assert_eq!(&m.labels, &reference.labels);
        prop_assert_eq!(m.cells.len(), reference.cells.len());
        for (x, y) in m.cells.iter().zip(&reference.cells) {
            prop_assert!(
                cells_bit_identical(x, y),
                "block={} shards={} cell {:?} != serial",
                block,
                shards,
                x.label
            );
        }
    }

    #[test]
    fn indexed_matching_equals_reference(a in arb_trial(40), b in arb_trial(40)) {
        let ia = TrialIndex::build(&a).unwrap();
        let ib = TrialIndex::build(&b).unwrap();
        let reference = Matching::build(&a, &b);
        let indexed = matching_indexed(&ia, &ib);
        prop_assert_eq!(indexed.a_len, reference.a_len);
        prop_assert_eq!(indexed.b_len, reference.b_len);
        prop_assert_eq!(indexed.pairs, reference.pairs);
    }

    #[test]
    fn indexed_metrics_equal_uncached(a in arb_trial(40), b in arb_trial(40)) {
        let ia = TrialIndex::build(&a).unwrap();
        let ib = TrialIndex::build(&b).unwrap();
        let m = Matching::build(&a, &b);

        let iat_ref = iat_full(&a, &b, &m);
        let iat_idx = iat_full_indexed(&ia, &ib, &m);
        prop_assert_eq!(iat_idx.i.to_bits(), iat_ref.i.to_bits());
        prop_assert_eq!(iat_idx.deltas_ns.len(), iat_ref.deltas_ns.len());
        for (x, y) in iat_idx.deltas_ns.iter().zip(&iat_ref.deltas_ns) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }

        let lat_ref = latency_full(&a, &b, &m);
        let lat_idx = latency_full_indexed(&ia, &ib, &m);
        prop_assert_eq!(lat_idx.l.to_bits(), lat_ref.l.to_bits());
        prop_assert_eq!(lat_idx.deltas_ns.len(), lat_ref.deltas_ns.len());
        for (x, y) in lat_idx.deltas_ns.iter().zip(&lat_ref.deltas_ns) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn matrix_summary_brackets_every_cell(trials in arb_trials(6, 30)) {
        let m = all_pairs_sharded(&trials, 4).unwrap();
        if let Some(s) = m.summary() {
            prop_assert_eq!(s.trials, trials.len());
            prop_assert_eq!(s.pairs, m.cells.len());
            for c in &m.cells {
                prop_assert!(s.kappa_min <= c.metrics.kappa);
                prop_assert!(c.metrics.kappa <= s.kappa_max);
            }
            prop_assert!(s.kappa_min <= s.kappa_median && s.kappa_median <= s.kappa_max);
        }
    }

    #[test]
    fn degenerate_trials_never_produce_nan(a in arb_trial(3), b in arb_trial(3)) {
        // ≤1 common packet or a zero span must yield exactly 0 for the
        // timing metrics, never NaN (paper Eq. 5 needs finite inputs).
        let m = compare(&a, &b);
        prop_assert!(!m.i.is_nan() && !m.l.is_nan());
        prop_assert!(!m.kappa.is_nan());
        let pair = [a, b];
        let matrix = all_pairs_sharded(&pair, 2).unwrap();
        prop_assert!(!matrix.kappa(0, 1).is_nan());
    }
}
