//! The multi-domain testbed: a ring of replay sites spread across a
//! FABRIC-style federation, runnable on the serial engine or sharded
//! across cores ([`choir_netsim::ShardedSim`]) with byte-identical
//! captures either way.
//!
//! ## Topology
//!
//! Each site is one self-contained replay chain through its own switch —
//! generator → middlebox, exactly the paper's per-testbed setup — except
//! the middlebox's transmit side feeds a *long-haul link* to the next
//! site's recorder instead of a local one:
//!
//! ```text
//!   site s:  gen ──sw[0→1]── mb ──(remote link s)──▶ site s+1:
//!                                                     sw[2→3]── rec
//! ```
//!
//! The inter-site propagation delay (tens of microseconds of fiber) is
//! exactly the conservative lookahead the shard coordinator needs, which
//! is why this topology is the natural unit of partitioning: sites map
//! to shards (round-robin), and only the long-haul links cross shards.
//!
//! Site identities come from the `choir_fabric` site catalog, so the
//! fleet reads like a slice allocation across the federation
//! (EDUKY → CERN → STAR → …).
//!
//! ## Experiment
//!
//! Phases mirror the single-domain runner: every site records its
//! generator's stream once, then the whole fleet replays R times with
//! per-run clock resync/skew re-sampled from per-site RNG streams (per
//! site, not sequential across the fleet — a draw order that does not
//! depend on how sites are packed into shards). Each run's fleet-wide
//! capture is the merge of all recorders' observations ordered by
//! `(arrival time, packet id)`, and κ is computed across those merged
//! trials — consistency of the federation, not of one box.

use choir_capture::{Recorder, RecorderConfig};
use choir_core::metrics::allpairs::{all_pairs_sharded_with, KappaMatrix};
use choir_core::metrics::report::{RunReport, TrialComparison};
use choir_core::metrics::{KappaConfig, Trial};
use choir_core::replay::middlebox::{ChoirMiddlebox, MiddleboxConfig};
use choir_dpdk::ControlMsg;
use choir_netsim::clock::{NodeClock, PtpModel};
use choir_netsim::nic::{NicRxModel, NicTxModel};
use choir_netsim::rng::{DetRng, Jitter};
use choir_netsim::shard::{partition_round_robin, ShardedSim, SimBuilder, SyncStats};
use choir_netsim::switchdev::{Switch, SwitchProfile};
use choir_netsim::time::{MS, NS, US};
use choir_netsim::{Endpoint, NodeId, Sim, SimConfig, SimStats};
use choir_pktgen::{Generator, GeneratorConfig};

use crate::runner::{sim_stats_report, SimTuning};

/// A ring of replay sites. Construct with [`MultiDomainProfile::ring`].
#[derive(Debug, Clone)]
pub struct MultiDomainProfile {
    /// Number of sites (≥ 1; a 1-site ring loops back onto itself).
    pub sites: usize,
    /// Federation site names backing each domain (cycled from the
    /// `choir_fabric` catalog).
    pub site_names: Vec<String>,
    /// Per-site traffic rate in bits per second.
    pub rate_bps: u64,
    /// Frame length in bytes.
    pub frame_len: usize,
    /// Recorded stream duration in ps.
    pub duration_ps: u64,
    /// Replay runs (fleet-wide trials).
    pub runs: usize,
    /// NIC/link rate in bits per second.
    pub link_rate_bps: u64,
    /// Node TSC frequency.
    pub tsc_hz: u64,
    /// Long-haul propagation between sites, ps. This is the shard
    /// lookahead: larger values mean fewer synchronization windows.
    pub inter_site_prop_ps: u64,
    /// Per-site switch.
    pub switch: SwitchProfile,
    /// Middlebox receive-poll visibility latency.
    pub poll_latency: Jitter,
    /// PTP offset sigma (ns), re-sampled per site per run.
    pub ptp_offset_sigma_ns: f64,
    /// PTP drift sigma (ns/s), re-sampled per site per run.
    pub ptp_drift_sigma: f64,
    /// Recorder timestamp-clock slope sigma (ppb), per site per run.
    pub ts_slope_sigma_ppb: f64,
    /// Per-site, per-run replay arming skew.
    pub replay_start_skew: Jitter,
}

impl MultiDomainProfile {
    /// A ring of `sites` 40 Gbps sites with 5 µs of fiber between
    /// neighbours, named after the FABRIC catalog.
    pub fn ring(sites: usize) -> Self {
        assert!(sites >= 1, "a ring needs at least one site");
        let catalog = choir_fabric::Site::catalog();
        let site_names = (0..sites)
            .map(|s| catalog[s % catalog.len()].name.clone())
            .collect();
        MultiDomainProfile {
            sites,
            site_names,
            rate_bps: 40_000_000_000,
            frame_len: 1400,
            duration_ps: 300 * MS,
            runs: 3,
            link_rate_bps: 100_000_000_000,
            tsc_hz: 2_500_000_000,
            inter_site_prop_ps: 25 * US, // ~5 km of fiber
            switch: SwitchProfile::tofino2(100_000_000_000),
            poll_latency: Jitter::Const(4 * US as i64),
            ptp_offset_sigma_ns: 30.0,
            ptp_drift_sigma: 5.0,
            ts_slope_sigma_ppb: 7_000.0,
            replay_start_skew: Jitter::Normal {
                mean: 0.0,
                sigma: 100.0 * US as f64,
            },
        }
    }

    /// Globally-unique label of one site (node-name prefix, hence RNG
    /// stream identity).
    pub fn site_label(&self, site: usize) -> String {
        format!("s{site}-{}", self.site_names[site])
    }

    /// Packets per site at full scale.
    pub fn full_packet_count(&self) -> u64 {
        choir_packet::FrameSpec::new(self.frame_len, self.rate_bps).packets_in(self.duration_ps)
    }

    /// Inter-packet gap of one site's stream, ps.
    pub fn gap_ps(&self) -> u64 {
        choir_packet::FrameSpec::new(self.frame_len, self.rate_bps).gap_ps()
    }
}

/// What to run.
#[derive(Debug, Clone)]
pub struct MultiDomainConfig {
    /// The fleet.
    pub profile: MultiDomainProfile,
    /// Fraction of the full per-site packet count.
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
}

impl MultiDomainConfig {
    /// Packets each site records under this config.
    pub fn packet_count(&self) -> u64 {
        ((self.profile.full_packet_count() as f64 * self.scale) as u64).max(50)
    }
}

/// Everything a multi-domain experiment produces.
#[derive(Debug)]
pub struct MultiDomainOutput {
    /// Per-run comparisons against run A plus the fleet mean.
    pub report: RunReport,
    /// The full all-pairs κ matrix over the merged fleet trials.
    pub matrix: KappaMatrix,
    /// Merged, re-zeroed fleet trials (run A first).
    pub trials: Vec<Trial>,
    /// Packets held across all middlebox recordings.
    pub recorded_packets: u64,
    /// Merged engine counters (summed across shards).
    pub sim_stats: SimStats,
    /// Shard-synchronization overhead (zero for the serial engine).
    pub sync: SyncStats,
    /// Shards the engine ran on (0 = serial).
    pub shards: usize,
    /// Wall-clock time of the capture pipeline, excluding analysis.
    pub capture_wall_ns: u64,
}

/// Node ids of one site inside its owning sim.
#[derive(Debug, Clone, Copy)]
struct SitePlace {
    shard: usize,
    gen: NodeId,
    mb: NodeId,
    rec: NodeId,
}

/// Build one site into `sim`. Node/switch names are prefixed with the
/// site label, so every RNG stream is unique fleet-wide and identical
/// across shard layouts. Returns the node ids relative to `sim`.
fn build_site(
    sim: &mut Sim,
    p: &MultiDomainProfile,
    seed: u64,
    site: usize,
    n_packets: u64,
    copy_stamp: bool,
) -> (NodeId, NodeId, NodeId) {
    let label = p.site_label(site);
    // Per-site construction stream: draws do not interleave with other
    // sites', so clocks are shard-layout invariants.
    let mut rng = DetRng::derive(seed, &["mdsite", &label]);
    let clock = |rng: &mut DetRng| NodeClock {
        tsc_hz: p.tsc_hz,
        tsc_offset: rng.range_u64(0, 1 << 40),
        freq_error_ppb: rng.range_u64(0, 60) as i64 - 30,
        ptp: PtpModel::sampled(rng, p.ptp_offset_sigma_ns, p.ptp_drift_sigma),
    };

    let mut gen_cfg = GeneratorConfig::cbr(p.rate_bps, n_packets);
    gen_cfg.ports = vec![0];
    let gen = sim.add_node(
        &format!("{label}/generator"),
        Generator::new(gen_cfg),
        clock(&mut rng),
        Jitter::None,
    );
    sim.add_port(gen, NicTxModel::ideal(p.link_rate_bps), NicRxModel::ideal());

    let mb = sim.add_node(
        &format!("{label}/replayer"),
        ChoirMiddlebox::new(MiddleboxConfig {
            rx_port: 0,
            tx_port: 1,
            replayer_id: site as u16,
            stamp_tags: true,
            in_band_control: false,
            tx_retries: 3,
            rolling_window: None,
            bridge_reverse: false,
            pool_reserve: 128,
            copy_stamp,
        }),
        clock(&mut rng),
        Jitter::None,
    );
    sim.add_port(
        mb,
        NicTxModel::ideal(p.link_rate_bps),
        NicRxModel {
            ring_cap: 8192,
            deliver_latency: p.poll_latency.clone(),
            ..NicRxModel::ideal()
        },
    );
    sim.add_port(mb, NicTxModel::ideal(p.link_rate_bps), NicRxModel::ideal());

    let rec = sim.add_node(
        &format!("{label}/recorder"),
        Recorder::new(RecorderConfig::default()),
        clock(&mut rng),
        Jitter::None,
    );
    sim.add_port(
        rec,
        NicTxModel::ideal(p.link_rate_bps),
        NicRxModel {
            ring_cap: 1 << 14,
            deliver_latency: Jitter::Const(100 * NS as i64),
            ..NicRxModel::ideal()
        },
    );

    // Site switch: 0→1 carries the local generator into the middlebox;
    // 2→3 carries the *previous* site's long-haul traffic into the
    // recorder. The two paths are disjoint, so the generator ingress
    // stays a single feeder (eager cut-through) in every build.
    let sw = sim.add_switch(Switch::new(4, p.switch.clone()), &format!("{label}/switch"));
    sim.connect_node_switch(gen, 0, sw, 0, 5_000);
    sim.connect_node_switch(mb, 0, sw, 1, 5_000);
    sim.switch_map(sw, 0, 1);
    sim.connect_node_switch(rec, 0, sw, 3, 5_000);
    sim.switch_map(sw, 2, 3);

    // Long-haul out: this middlebox feeds remote link `site`, terminating
    // at the next site's switch ingress 2.
    sim.connect_remote_out(mb, 1, site as u32, p.inter_site_prop_ps);
    let prev = (site + p.sites - 1) % p.sites;
    sim.connect_remote_in(prev as u32, Endpoint::SwitchPort(sw, 2));

    (gen, mb, rec)
}

/// The engine behind a fleet: the serial reference or the sharded one.
enum Engine {
    Serial(Box<Sim>),
    Sharded(ShardedSim),
}

struct Fleet {
    eng: Engine,
    places: Vec<SitePlace>,
}

impl Fleet {
    fn now_ps(&self) -> u64 {
        match &self.eng {
            Engine::Serial(sim) => sim.now_ps(),
            Engine::Sharded(fl) => fl.now_ps(),
        }
    }

    fn run_until(&mut self, deadline_ps: u64) {
        match &mut self.eng {
            Engine::Serial(sim) => {
                sim.run_until(deadline_ps);
            }
            Engine::Sharded(fl) => {
                fl.run_until(deadline_ps);
            }
        }
    }

    /// Run a closure against the sim owning `site` (on its worker thread
    /// for sharded fleets — hence the `Send` bounds).
    fn with_site<R, F>(&mut self, site: usize, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut Sim, SitePlace) -> R + Send + 'static,
    {
        let p = self.places[site];
        match &mut self.eng {
            Engine::Serial(sim) => f(sim, p),
            Engine::Sharded(fl) => fl.with_sim(p.shard, move |sim| f(sim, p)),
        }
    }

    fn sim_stats(&mut self) -> SimStats {
        match &mut self.eng {
            Engine::Serial(sim) => sim.sim_stats(),
            Engine::Sharded(fl) => fl.sim_stats(),
        }
    }

    fn sync_stats(&self) -> SyncStats {
        match &self.eng {
            Engine::Serial(_) => SyncStats::default(),
            Engine::Sharded(fl) => fl.sync_stats(),
        }
    }
}

fn build_fleet(cfg: &MultiDomainConfig, tuning: SimTuning) -> Fleet {
    let p = &cfg.profile;
    let n_packets = cfg.packet_count();
    let sim_cfg = SimConfig {
        master_seed: cfg.seed,
        trial: 0,
        // Sized for the whole fleet so serial and per-shard pools behave
        // identically (allocation only matters on exhaustion).
        pool_slots: (n_packets as usize) * p.sites * 2 + 65_536,
        queue: tuning.queue,
        coalesce: tuning.coalesce,
        guard_slot_alloc: tuning.guard_slot_alloc,
    };
    if tuning.shards == 0 {
        let mut sim = Sim::new(sim_cfg);
        let mut places = Vec::new();
        for s in 0..p.sites {
            let (gen, mb, rec) = build_site(&mut sim, p, cfg.seed, s, n_packets, tuning.copy_stamp);
            places.push(SitePlace {
                shard: 0,
                gen,
                mb,
                rec,
            });
        }
        Fleet {
            eng: Engine::Serial(Box::new(sim)),
            places,
        }
    } else {
        let parts = partition_round_robin(p.sites, tuning.shards);
        let mut places = vec![
            SitePlace {
                shard: 0,
                gen: 0,
                mb: 0,
                rec: 0,
            };
            p.sites
        ];
        let mut builders: Vec<SimBuilder> = Vec::new();
        for (shard, domains) in parts.iter().enumerate() {
            for (pos, &site) in domains.iter().enumerate() {
                // Each site adds exactly 3 nodes in build order.
                places[site] = SitePlace {
                    shard,
                    gen: 3 * pos,
                    mb: 3 * pos + 1,
                    rec: 3 * pos + 2,
                };
            }
            let domains = domains.clone();
            let profile = p.clone();
            let seed = cfg.seed;
            let copy_stamp = tuning.copy_stamp;
            builders.push(Box::new(move |sim: &mut Sim| {
                for site in domains {
                    build_site(sim, &profile, seed, site, n_packets, copy_stamp);
                }
            }));
        }
        let fleet = ShardedSim::new(sim_cfg, p.inter_site_prop_ps, builders);
        Fleet {
            eng: Engine::Sharded(fleet),
            places,
        }
    }
}

/// Run the multi-domain experiment end to end. `tuning.shards` selects
/// the engine: 0 = serial reference, n ≥ 1 = sharded across n workers —
/// with byte-identical trials either way (the determinism gates in
/// `repro pipeline --shards N` and the proptests assert exactly this).
///
/// # Panics
/// Panics if the fleet produces fewer than two trials, or if any run's
/// fleet-wide capture is not exactly one trial per site (wiring bugs).
pub fn run_multidomain(cfg: &MultiDomainConfig, tuning: SimTuning) -> MultiDomainOutput {
    let t_capture = std::time::Instant::now();
    let p = cfg.profile.clone();
    assert!(p.runs >= 2, "need at least two runs to compare");
    let n_packets = cfg.packet_count();
    let mut fleet = build_fleet(cfg, tuning);

    // --- Phase 1: every site records its stream ----------------------
    let gap = p.gap_ps();
    let duration = n_packets * gap;
    let t_rec_start = MS;
    let t_gen_start = 2 * MS;
    let t_stop = t_gen_start + duration + 2 * MS;
    for s in 0..p.sites {
        fleet.with_site(s, move |sim, place| {
            sim.send_control(place.mb, ControlMsg::StartRecord, t_rec_start);
            sim.send_control(place.mb, ControlMsg::StopRecord, t_stop);
            sim.wake_app(place.gen, t_gen_start);
        });
    }
    // The long-haul hop adds propagation; pad the drain accordingly.
    fleet.run_until(t_stop + MS + p.inter_site_prop_ps);
    let mut recorded_packets = 0u64;
    for s in 0..p.sites {
        // Discard the recording-phase capture at every recorder.
        fleet.with_site(s, |sim, place| {
            sim.with_app::<Recorder, _>(place.rec, |r| {
                r.take_trials();
            });
        });
        recorded_packets += fleet.with_site(s, |sim, place| {
            sim.with_app::<ChoirMiddlebox, _>(place.mb, |m| m.recording().packets() as u64)
        });
    }

    // --- Phase 2: fleet-wide replays ---------------------------------
    let margin = 3 * MS;
    let mut raw_trials: Vec<Trial> = Vec::new();
    for run in 0..p.runs {
        let start_wall_ns = (fleet.now_ps() + margin) / 1_000;
        let now = fleet.now_ps();
        let mut max_skew_ps: u64 = 0;
        for s in 0..p.sites {
            let seed = cfg.seed;
            let profile = p.clone();
            // Per-site, per-run resync stream: between-run clock wander
            // whose draws cannot interleave across sites (and therefore
            // cannot depend on the shard layout).
            let skew_ns = fleet.with_site(s, move |sim, place| {
                let label = profile.site_label(s);
                let mut resync =
                    DetRng::derive_indexed(seed, &["mdresync", &label], run as u64);
                for node in [place.gen, place.mb, place.rec] {
                    sim.set_ptp(
                        node,
                        PtpModel::sampled(
                            &mut resync,
                            profile.ptp_offset_sigma_ns,
                            profile.ptp_drift_sigma,
                        ),
                    );
                }
                let slope = (profile.ts_slope_sigma_ppb * resync.std_normal()) as i64;
                sim.set_rx_clock_slope(place.rec, 0, slope);
                let skew_ns = profile.replay_start_skew.sample(&mut resync) / 1_000;
                let start = (start_wall_ns as i64 + skew_ns).max(0) as u64;
                sim.send_control(
                    place.mb,
                    ControlMsg::ScheduleReplay {
                        start_wall_ns: start,
                    },
                    now,
                );
                skew_ns
            });
            max_skew_ps = max_skew_ps.max(skew_ns.unsigned_abs() * 1_000);
        }
        let end = now + margin + duration + margin + max_skew_ps + p.inter_site_prop_ps;
        fleet.run_until(end);

        // Harvest: one capture per site, merged into the fleet trial in
        // (arrival time, packet id) order — a total order over unique
        // packets, so the merge is layout-independent.
        let mut merged: Vec<choir_core::metrics::Observation> = Vec::new();
        for s in 0..p.sites {
            let cut = fleet.with_site(s, |sim, place| {
                sim.with_app::<Recorder, _>(place.rec, |r| r.take_trials())
            });
            assert_eq!(
                cut.len(),
                1,
                "site {s} produced {} captures in run {run}; wiring bug",
                cut.len()
            );
            merged.extend_from_slice(cut[0].observations());
        }
        merged.sort_unstable_by_key(|o| (o.t_ps, o.id));
        let mut trial = Trial::with_capacity(merged.len());
        for o in merged {
            trial.push(o.id, o.t_ps);
        }
        raw_trials.push(trial);
    }

    let trials: Vec<Trial> = raw_trials.into_iter().map(|t| t.rezeroed()).collect();
    let capture_wall_ns = t_capture.elapsed().as_nanos() as u64;

    // --- Analysis: κ across the merged fleet trials ------------------
    let analysis_shards = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let (matrix, _engine) =
        all_pairs_sharded_with(&trials, analysis_shards, &KappaConfig::paper())
            .expect("fleet trials fit the u32 index limit");
    let comparisons: Vec<TrialComparison> = matrix.baseline_row();

    let mut degradation = choir_core::replay::DegradationReport::default();
    for s in 0..p.sites {
        let d = fleet.with_site(s, |sim, place| {
            sim.with_app::<ChoirMiddlebox, _>(place.mb, |m| m.degradation_report())
        });
        degradation.absorb(&d);
    }
    let sim_stats = fleet.sim_stats();
    let sync = fleet.sync_stats();
    let mut stats_report = sim_stats_report(&sim_stats);
    stats_report.shards = tuning.shards as u64;
    stats_report.sync_windows = sync.windows;
    let label = format!("Multi-Domain Ring x{}", p.sites);
    let mut report = RunReport::new(label, comparisons)
        .expect("runs >= 2 asserted above")
        .with_degradation(degradation)
        .with_sim_stats(stats_report);
    if let Some(summary) = matrix.summary() {
        report = report.with_matrix(summary);
    }
    report = report.with_obs(choir_core::obs::snapshot());

    MultiDomainOutput {
        report,
        matrix,
        trials,
        recorded_packets,
        sim_stats,
        sync,
        shards: tuning.shards,
        capture_wall_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(sites: usize, scale: f64, seed: u64) -> MultiDomainConfig {
        let mut profile = MultiDomainProfile::ring(sites);
        profile.runs = 2;
        MultiDomainConfig {
            profile,
            scale,
            seed,
        }
    }

    fn tuned(shards: usize) -> SimTuning {
        SimTuning {
            shards,
            ..SimTuning::default()
        }
    }

    #[test]
    fn serial_fleet_end_to_end() {
        let out = run_multidomain(&quick_cfg(3, 0.0003, 11), tuned(0));
        assert_eq!(out.shards, 0);
        assert_eq!(out.trials.len(), 2);
        // 3 sites × ~316 packets each, no drops.
        assert_eq!(out.recorded_packets, 3 * 316);
        for t in &out.trials {
            assert_eq!(t.len() as u64, out.recorded_packets);
            assert!(t.is_time_ordered());
        }
        assert!(out.report.mean.kappa > 0.5, "kappa {}", out.report.mean.kappa);
        // Every long-haul crossing is a remote admission, even serially.
        assert!(out.sim_stats.remote_packets > 0);
        assert_eq!(out.sync, SyncStats::default());
    }

    #[test]
    fn sharded_trials_match_serial_bit_for_bit() {
        let cfg = quick_cfg(3, 0.0002, 23);
        let serial = run_multidomain(&cfg, tuned(0));
        for shards in [1usize, 2, 3] {
            let sharded = run_multidomain(&cfg, tuned(shards));
            assert_eq!(
                sharded.trials, serial.trials,
                "trials diverged at {shards} shards"
            );
            // κ is a pure function of the trials, so the whole baseline
            // row matches to the bit.
            for (a, b) in serial.report.runs.iter().zip(&sharded.report.runs) {
                assert_eq!(
                    a.metrics.kappa.to_bits(),
                    b.metrics.kappa.to_bits(),
                    "kappa diverged at {shards} shards"
                );
            }
            // Summing engine counters are exact across the partition.
            assert_eq!(
                sharded.sim_stats.events_processed,
                serial.sim_stats.events_processed
            );
            assert_eq!(
                sharded.sim_stats.remote_packets,
                serial.sim_stats.remote_packets
            );
            if shards >= 2 {
                assert!(sharded.sync.windows > 0);
                assert!(sharded.sync.remote_packets > 0);
            }
        }
    }

    #[test]
    fn sharded_run_repeats_bit_identically() {
        let cfg = quick_cfg(2, 0.0002, 41);
        let a = run_multidomain(&cfg, tuned(2));
        let b = run_multidomain(&cfg, tuned(2));
        assert_eq!(a.trials, b.trials);
        assert_eq!(a.sim_stats, b.sim_stats);
        assert_eq!(a.sync, b.sync);
    }

    #[test]
    fn more_shards_than_sites_is_fine() {
        let cfg = quick_cfg(2, 0.0002, 7);
        let serial = run_multidomain(&cfg, tuned(0));
        let over = run_multidomain(&cfg, tuned(5));
        assert_eq!(over.trials, serial.trials);
    }

    #[test]
    fn fleet_sites_carry_fabric_names() {
        let p = MultiDomainProfile::ring(8);
        assert_eq!(p.site_names.len(), 8);
        // Catalog has 6 entries; the ring cycles it.
        assert_eq!(p.site_names[0], p.site_names[6]);
        assert_ne!(p.site_label(0), p.site_label(6), "labels stay unique");
    }
}
