//! `choir-ctl`: command-line client for the κ service daemon.
//!
//! ```text
//! choir-ctl <addr> ping
//! choir-ctl <addr> create <tenant> [budget-bytes]
//! choir-ctl <addr> drop <tenant>
//! choir-ctl <addr> open <tenant> <stream>
//! choir-ctl <addr> ingest-pcap <tenant> <stream> <file.pcap>
//! choir-ctl <addr> finish <tenant> <stream>
//! choir-ctl <addr> status <tenant> <stream>
//! choir-ctl <addr> snapshot <tenant> <stream>
//! choir-ctl <addr> trail <tenant> <stream>
//! choir-ctl <addr> matrix <tenant>
//! choir-ctl <addr> stats
//! choir-ctl <addr> checkpoint
//! choir-ctl <addr> shutdown
//! ```
//!
//! `ingest-pcap` reads the capture through the same
//! [`choir_capture::Source`] abstraction the experiment runner uses,
//! resumes from the daemon's recorded progress (safe to re-run after an
//! interrupted upload), and chunks records over the wire.

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use choir_capture::{drain_available, PcapSource};
use choir_core::metrics::Observation;
use choir_service::{Client, ClientError, Response};

fn fail(msg: impl std::fmt::Display) -> ExitCode {
    eprintln!("choir-ctl: {msg}");
    ExitCode::FAILURE
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: choir-ctl <addr> \
         <ping|create|drop|open|ingest-pcap|finish|status|snapshot|trail|matrix|stats|checkpoint|shutdown> [args]"
    );
    ExitCode::from(2)
}

fn print_kappa(prefix: &str, k: &choir_service::WireKappa) {
    println!(
        "{prefix}kappa {:.6} (bits {:#018x})  U {:.3e}  O {:.3e}  L {:.3e}  I {:.3e}",
        k.kappa, k.kappa_bits, k.u, k.o, k.l, k.i
    );
}

fn run(mut c: Client, cmd: &str, rest: &[String]) -> Result<ExitCode, ClientError> {
    match (cmd, rest) {
        ("ping", []) => {
            c.ping()?;
            println!("ok");
        }
        ("create", [tenant]) => {
            c.create_tenant(tenant, 0)?;
            println!("tenant {tenant} created");
        }
        ("create", [tenant, budget]) => {
            let b: u64 = budget.parse().map_err(|_| {
                ClientError::Daemon(format!("`{budget}` is not a byte count"))
            })?;
            c.create_tenant(tenant, b)?;
            println!("tenant {tenant} created (budget {b} bytes)");
        }
        ("drop", [tenant]) => {
            c.drop_tenant(tenant)?;
            println!("tenant {tenant} dropped");
        }
        ("open", [tenant, stream]) => {
            c.open_stream(tenant, stream)?;
            println!("stream {tenant}/{stream} open");
        }
        ("ingest-pcap", [tenant, stream, path]) => {
            let file = File::open(path)
                .map_err(|e| ClientError::Daemon(format!("open {path}: {e}")))?;
            let mut src = PcapSource::new(BufReader::new(file))
                .map_err(|e| ClientError::Daemon(format!("parse {path}: {e}")))?;
            let (mut seq, finished, _) = c.stream_status(tenant, stream)?;
            if finished {
                return Err(ClientError::Daemon(format!(
                    "stream {tenant}/{stream} is already finished"
                )));
            }
            if seq > 0 {
                println!("resuming at record {seq}");
            }
            let mut batch: Vec<Observation> = Vec::new();
            let mut sent = 0u64;
            loop {
                batch.clear();
                let got = drain_available(&mut src, |o| batch.push(o))
                    .map_err(|e| ClientError::Daemon(format!("read {path}: {e}")))?;
                if got == 0 {
                    break;
                }
                // Skip the prefix the daemon already has (resume).
                let have = batch.len() as u64;
                let skip = seq.min(sent + have).saturating_sub(sent);
                if (skip as usize) < batch.len() {
                    seq = c.ingest(tenant, stream, seq, &batch[skip as usize..])?;
                    sent = seq;
                } else {
                    sent += have;
                }
            }
            println!("{tenant}/{stream}: {seq} records ingested");
        }
        ("finish", [tenant, stream]) => match c.finish_stream(tenant, stream)? {
            None => println!("baseline {tenant}/{stream} finished"),
            Some(f) => {
                println!(
                    "{tenant}/{stream} finished: |A| {}  |B| {}  common {}  missing {}  extra {}  moved {}",
                    f.a_len, f.b_len, f.common, f.missing, f.extra, f.moved
                );
                print_kappa("  ", &f.score);
            }
        },
        ("status", [tenant, stream]) => {
            let (ingested, finished, baseline) = c.stream_status(tenant, stream)?;
            println!(
                "{tenant}/{stream}: {ingested} records, {}{}",
                if finished { "finished" } else { "live" },
                if baseline { " (baseline)" } else { "" }
            );
        }
        ("snapshot", [tenant, stream]) => {
            if let Response::Snapshot {
                seen_a,
                seen_b,
                common,
                running,
            } = c.snapshot(tenant, stream)?
            {
                println!("{tenant}/{stream}: A {seen_a}  B {seen_b}  common {common}");
                print_kappa("  ", &running);
            }
        }
        ("trail", [tenant, stream]) => {
            if let Response::Trail { points } = c.trail(tenant, stream)? {
                for p in points {
                    println!(
                        "A {:>8}  B {:>8}  common {:>8}  kappa {:.6}",
                        p.seen_a, p.seen_b, p.common, p.running.kappa
                    );
                }
            }
        }
        ("matrix", [tenant]) => {
            if let Response::Matrix { labels, cells } = c.matrix(tenant)? {
                println!("{} streams: {}", labels.len(), labels.join(", "));
                for cell in cells {
                    println!(
                        "{} vs {}: kappa {:.6} (bits {:#018x})  common {}  missing {}  extra {}",
                        labels[cell.i as usize],
                        labels[cell.j as usize],
                        cell.score.kappa,
                        cell.score.kappa_bits,
                        cell.common,
                        cell.missing,
                        cell.extra
                    );
                }
            }
        }
        ("stats", []) => {
            if let Response::Stats {
                tenants,
                streams,
                store_resident_bytes,
                store_budget_bytes,
                store_evictions,
                store_reloads,
                ingests,
                records,
            } = c.stats()?
            {
                println!("tenants {tenants}  streams {streams}");
                println!(
                    "store: {store_resident_bytes} / {store_budget_bytes} bytes resident, \
                     {store_evictions} evictions, {store_reloads} reloads"
                );
                println!("ingest: {ingests} requests, {records} records");
            }
        }
        ("checkpoint", []) => {
            c.checkpoint()?;
            println!("checkpointed");
        }
        ("shutdown", []) => {
            c.shutdown()?;
            println!("daemon stopped");
        }
        _ => return Ok(usage()),
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [addr, cmd, rest @ ..] = args.as_slice() else {
        return usage();
    };
    let client = match Client::connect(addr.as_str()) {
        Ok(c) => c,
        Err(e) => return fail(e),
    };
    match run(client, cmd, rest) {
        Ok(code) => code,
        Err(e) => fail(e),
    }
}
