//! Packet bursts.
//!
//! Choir "transmits packets in up to 64-packet bursts. During replays, it
//! sends bursts to the NIC identically to when it originally transmitted
//! them" (paper §5). [`Burst`] is that unit: a bounded, reusable container
//! of [`Mbuf`]s. The backing storage is allocated once at the full 64-slot
//! capacity and reused across polls, so the forwarding hot loop never
//! allocates.

use std::collections::VecDeque;

use crate::mbuf::Mbuf;

/// Maximum packets per burst, matching Choir's configuration.
pub const MAX_BURST: usize = 64;

/// A bounded burst of mbufs.
///
/// Backed by a `VecDeque` so a partially-accepted transmit can consume
/// from the front by move (no refcount churn on the hot path).
#[derive(Clone, Debug, Default)]
pub struct Burst {
    items: VecDeque<Mbuf>,
}

impl Burst {
    /// An empty burst with capacity preallocated.
    pub fn new() -> Self {
        Burst {
            items: VecDeque::with_capacity(MAX_BURST),
        }
    }

    /// Build a burst from an iterator, panicking if it exceeds
    /// [`MAX_BURST`].
    pub fn from_iter_checked<I: IntoIterator<Item = Mbuf>>(iter: I) -> Self {
        let mut b = Burst::new();
        for m in iter {
            b.push(m).expect("burst overflow");
        }
        b
    }

    /// Append an mbuf; returns it back if the burst is full.
    pub fn push(&mut self, m: Mbuf) -> Result<(), Mbuf> {
        if self.items.len() >= MAX_BURST {
            return Err(m);
        }
        self.items.push_back(m);
        Ok(())
    }

    /// Remove and return the first packet.
    pub fn pop_front(&mut self) -> Option<Mbuf> {
        self.items.pop_front()
    }

    /// Put a packet back at the front (undo of [`Burst::pop_front`] when a
    /// transmit ring rejects it). Permitted even on a full burst, since
    /// the packet came from this burst.
    pub fn push_front(&mut self, m: Mbuf) {
        self.items.push_front(m);
    }

    /// Number of packets currently in the burst.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the burst holds no packets.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// True when the burst holds [`MAX_BURST`] packets.
    pub fn is_full(&self) -> bool {
        self.items.len() == MAX_BURST
    }

    /// Remove and return all packets, leaving the burst empty but with its
    /// capacity intact.
    pub fn drain(&mut self) -> impl Iterator<Item = Mbuf> + '_ {
        self.items.drain(..)
    }

    /// Remove and return the first `n` packets (used when a NIC accepts
    /// only part of a burst).
    pub fn drain_front(&mut self, n: usize) -> impl Iterator<Item = Mbuf> + '_ {
        self.items.drain(..n.min(self.items.len()))
    }

    /// Clear the burst, dropping all mbufs (slots return to their pools).
    pub fn clear(&mut self) {
        self.items.clear();
    }

    /// Iterate without consuming.
    pub fn iter(&self) -> std::collections::vec_deque::Iter<'_, Mbuf> {
        self.items.iter()
    }

    /// Access by index.
    pub fn get(&self, i: usize) -> Option<&Mbuf> {
        self.items.get(i)
    }

    /// Total frame bytes across the burst.
    pub fn total_bytes(&self) -> usize {
        self.items.iter().map(|m| m.len()).sum()
    }
}

impl<'a> IntoIterator for &'a Burst {
    type Item = &'a Mbuf;
    type IntoIter = std::collections::vec_deque::Iter<'a, Mbuf>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

impl IntoIterator for Burst {
    type Item = Mbuf;
    type IntoIter = std::collections::vec_deque::IntoIter<Mbuf>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use choir_packet::Frame;

    fn mbuf(n: usize) -> Mbuf {
        Mbuf::unpooled(Frame::new(Bytes::from(vec![1u8; n])))
    }

    #[test]
    fn push_until_full() {
        let mut b = Burst::new();
        for _ in 0..MAX_BURST {
            assert!(b.push(mbuf(10)).is_ok());
        }
        assert!(b.is_full());
        assert!(b.push(mbuf(10)).is_err());
        assert_eq!(b.len(), MAX_BURST);
    }

    #[test]
    fn drain_empties_and_keeps_capacity() {
        let mut b = Burst::new();
        b.push(mbuf(1)).unwrap();
        b.push(mbuf(2)).unwrap();
        let lens: Vec<usize> = b.drain().map(|m| m.len()).collect();
        assert_eq!(lens, vec![1, 2]);
        assert!(b.is_empty());
        assert!(b.items.capacity() >= MAX_BURST);
        // pop/push-front roundtrip.
        b.push(mbuf(9)).unwrap();
        let m = b.pop_front().unwrap();
        assert_eq!(m.len(), 9);
        b.push_front(m);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn drain_front_partial() {
        let mut b = Burst::new();
        for i in 1..=4 {
            b.push(mbuf(i)).unwrap();
        }
        let front: Vec<usize> = b.drain_front(2).map(|m| m.len()).collect();
        assert_eq!(front, vec![1, 2]);
        assert_eq!(b.len(), 2);
        assert_eq!(b.get(0).unwrap().len(), 3);
    }

    #[test]
    fn drain_front_more_than_len() {
        let mut b = Burst::new();
        b.push(mbuf(1)).unwrap();
        assert_eq!(b.drain_front(99).count(), 1);
        assert!(b.is_empty());
    }

    #[test]
    fn total_bytes() {
        let mut b = Burst::new();
        b.push(mbuf(100)).unwrap();
        b.push(mbuf(200)).unwrap();
        assert_eq!(b.total_bytes(), 300);
    }

    #[test]
    fn clear_returns_pool_slots() {
        let pool = crate::Mempool::new("b", 4);
        let mut b = Burst::new();
        b.push(pool.alloc(Frame::new(Bytes::from_static(b"x"))).unwrap())
            .unwrap();
        assert_eq!(pool.in_use(), 1);
        b.clear();
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn from_iter_checked_ok() {
        let b = Burst::from_iter_checked((0..3).map(|_| mbuf(5)));
        assert_eq!(b.len(), 3);
    }

    #[test]
    #[should_panic(expected = "burst overflow")]
    fn from_iter_checked_overflow() {
        let _ = Burst::from_iter_checked((0..MAX_BURST + 1).map(|_| mbuf(1)));
    }

    #[test]
    fn iterate_by_reference() {
        let mut b = Burst::new();
        b.push(mbuf(7)).unwrap();
        let total: usize = (&b).into_iter().map(|m| m.len()).sum();
        assert_eq!(total, 7);
        assert_eq!(b.len(), 1); // not consumed
    }
}
