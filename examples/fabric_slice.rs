//! A FABlib-style workflow end to end: reserve a slice on a site, stand
//! up a PTP domain inside it, record a stream with a Choir middlebox and
//! replay it — all on the simulated testbed (paper §2.1/§2.2 + Appendix A).
//!
//! ```text
//! cargo run --release --example fabric_slice
//! ```

use choir::capture::{Recorder, RecorderConfig};
use choir::core::replay::middlebox::{ChoirMiddlebox, MiddleboxConfig};
use choir::dpdk::ControlMsg;
use choir::fabric::{NicKind, NodeSpec, Site, Slice};
use choir::metrics::report::analyze;
use choir::netsim::ptp::{PtpClient, PtpGrandmaster};
use choir::netsim::time::MS;
use choir::netsim::{Sim, SimConfig};
use choir::pktgen::{Generator, GeneratorConfig};

fn main() {
    // 1. Reserve resources, as the paper's Jupyter artifact does:
    //    "Create a FABRIC topology with three VMs, using two dedicated
    //    smart NICs" (Appendix B) — plus a PTP grandmaster VM.
    let mut site = Site::large("STAR");
    println!("site {} before: {:?}", site.name, site.usage());

    let mut slice = Slice::new("choir-artifact");
    let gen = slice.add_node(NodeSpec::vm("generator", 4, 16).with_nic(NicKind::SmartConnectX6));
    let rep = slice.add_node(
        NodeSpec::vm("replayer", 4, 16)
            .with_nic(NicKind::SmartConnectX6)
            .with_nic(NicKind::SmartConnectX6),
    );
    let rec = slice.add_node(NodeSpec::vm("recorder", 4, 16).with_nic(NicKind::SharedVf));
    let gm = slice.add_node(NodeSpec::vm("ptp-gm", 2, 4).with_nic(NicKind::SharedVf));

    let uplink = slice.add_l2bridge("uplink"); // generator -> replayer
    let downlink = slice.add_l2bridge("downlink"); // replayer -> recorder + PTP
    slice.attach(gen, 0, uplink).unwrap();
    slice.attach(rep, 0, uplink).unwrap();
    slice.attach(rep, 1, downlink).unwrap();
    slice.attach(rec, 0, downlink).unwrap();
    slice.attach(gm, 0, downlink).unwrap();

    let mut prov = slice.submit(&mut site).expect("site has capacity");
    println!(
        "slice 'choir-artifact' provisioned on {}; site now: {:?}",
        prov.site_name(),
        site.usage()
    );

    // 2. Build the applications onto the provisioned nodes.
    let mut sim = Sim::new(SimConfig::default());
    let packets = 20_000u64;
    let n_gen = prov.build_node(
        &mut sim,
        gen,
        Generator::new(GeneratorConfig::cbr(40_000_000_000, packets)),
        7,
    );
    let n_rep = prov.build_node(
        &mut sim,
        rep,
        ChoirMiddlebox::new(MiddleboxConfig {
            in_band_control: false,
            ..MiddleboxConfig::default()
        }),
        7,
    );
    // tagged_only: PTP chatter shares the downlink but must not count as
    // experiment traffic.
    let n_rec = prov.build_node(
        &mut sim,
        rec,
        Recorder::new(RecorderConfig {
            tagged_only: true,
            ..RecorderConfig::default()
        }),
        7,
    );
    let n_gm = prov.build_node(&mut sim, gm, PtpGrandmaster::new(0, 1_000_000), 7);
    // The recorder also runs a PTP client in real deployments; here the
    // grandmaster simply shares the downlink bridge. (A dedicated client
    // node would be one more build_node call.)
    let _ = PtpClient::new(0, 0.5);

    let switches = prov.wire(&mut sim);
    let (up, down) = (switches[0], switches[1]);
    // Forwarding maps, as in the paper's simple port-forwarding program:
    // uplink: generator(port 0) -> replayer rx(port 1).
    sim.switch_map(up, 0, 1);
    // downlink members in attach order: replayer tx(0), recorder(1), gm(2).
    sim.switch_map(down, 0, 1); // replay traffic -> recorder
    sim.switch_map(down, 2, 1); // PTP broadcasts also reach the recorder

    // 3. Record 20k packets, then replay twice and score.
    sim.send_control(n_rep, ControlMsg::StartRecord, MS);
    sim.wake_app(n_gen, 2 * MS);
    sim.wake_app(n_gm, MS);
    // 285 ns per packet at 40 Gbps, in ps.
    let record_end = 2 * MS + packets * 285_000 + 2 * MS;
    sim.send_control(n_rep, ControlMsg::StopRecord, record_end);
    sim.run_until(record_end + MS);
    sim.with_app::<Recorder, _>(n_rec, |r| {
        r.take_trials();
    });
    let held = sim.with_app::<ChoirMiddlebox, _>(n_rep, |m| m.recording().packets());
    println!("middlebox recorded {held} packets");

    let mut trials = Vec::new();
    for _run in 0..2 {
        let start = (sim.now_ps() + 3 * MS) / 1_000;
        sim.send_control(
            n_rep,
            ControlMsg::ScheduleReplay { start_wall_ns: start },
            sim.now_ps(),
        );
        sim.run_until(sim.now_ps() + 3 * MS + packets * 285_000 + 3 * MS);
        sim.with_app::<Recorder, _>(n_rec, |r| r.cut_trial());
    }
    trials.extend(
        sim.with_app::<Recorder, _>(n_rec, |r| r.take_trials())
            .into_iter()
            .map(|t| t.rezeroed()),
    );

    let cmp = analyze("B", &trials[0], &trials[1]);
    println!(
        "replay B vs A on the slice: U={:.1e} O={:.1e} I={:.4} L={:.2e} kappa={:.4}",
        cmp.metrics.u, cmp.metrics.o, cmp.metrics.i, cmp.metrics.l, cmp.metrics.kappa
    );
    println!(
        "({} packets per trial; PTP grandmaster emitted syncs throughout)",
        trials[0].len()
    );
}
