//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, integer-range / tuple / `Just` /
//! `any::<T>()` strategies, `proptest::collection::vec`, weighted and
//! unweighted `prop_oneof!`, the `proptest!` test macro with
//! `#![proptest_config(..)]`, and the `prop_assert*` macros.
//!
//! Differences from upstream, deliberate for a hermetic build:
//! - **No shrinking.** A failing case panics with the generated inputs
//!   printed verbatim instead of a minimized counterexample.
//! - **Deterministic seeding.** Each test derives its RNG seed from the
//!   test name, so failures reproduce exactly across runs and machines.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

#[cfg(test)]
extern crate self as proptest;

pub mod test_runner {
    //! RNG + per-case failure reporting used by the `proptest!` expansion.

    /// Deterministic split-mix/xorshift generator for test case input.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a label (the test name), so every run of a given test
        /// sees the same case sequence.
        pub fn for_label(label: &str) -> Self {
            let mut state = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                state ^= b as u64;
                state = state.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: state | 1 }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            if bound.is_power_of_two() {
                return self.next_u64() & (bound - 1);
            }
            let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
            loop {
                let v = self.next_u64();
                if v <= zone {
                    return v % bound;
                }
            }
        }
    }

    /// Prints the failing case's inputs if the test body panics.
    pub struct CaseGuard {
        message: String,
        armed: bool,
    }

    impl CaseGuard {
        /// Arm a guard describing the current case.
        pub fn new(case: u32, inputs: String) -> Self {
            CaseGuard {
                message: format!("proptest case {case} failed; inputs: {inputs}"),
                armed: true,
            }
        }

        /// Disarm after the body completes without panicking.
        pub fn disarm(&mut self) {
            self.armed = false;
        }
    }

    impl Drop for CaseGuard {
        fn drop(&mut self) {
            if self.armed && std::thread::panicking() {
                eprintln!("{}", self.message);
            }
        }
    }
}

use test_runner::TestRng;

/// Runner configuration; only `cases` is honoured by this stand-in.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy {
    /// The value type produced.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    /// Draw a uniform value over the type's whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The full-range strategy for `T` (see [`Arbitrary`]).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

type BoxedGen<V> = Box<dyn Fn(&mut TestRng) -> V>;

/// Weighted choice between strategies of a common value type
/// (the engine behind `prop_oneof!`).
pub struct Union<V> {
    options: Vec<(u32, BoxedGen<V>)>,
}

impl<V> Union<V> {
    /// An empty union; populate with [`Union::or`].
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Union { options: Vec::new() }
    }

    /// Add a branch with the given relative weight.
    pub fn or<S>(mut self, weight: u32, strategy: S) -> Self
    where
        S: Strategy<Value = V> + 'static,
    {
        assert!(weight > 0, "prop_oneof! weights must be positive");
        self.options
            .push((weight, Box::new(move |rng| strategy.generate(rng))));
        self
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let total: u64 = self.options.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one branch");
        let mut pick = rng.below(total);
        for (w, gen) in &self.options {
            if pick < *w as u64 {
                return gen(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

pub mod collection {
    //! Collection strategies (`proptest::collection::vec`).

    use super::{Strategy, TestRng};
    use std::fmt::Debug;
    use std::ops::Range;

    /// A `Vec` of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, Arbitrary,
        Just, ProptestConfig, Strategy,
    };
}

/// Assert a condition inside a property test (panics like `assert!`;
/// this stand-in does not shrink, so plain panics are fine).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted (`w => strategy`) or unweighted choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new()$(.or(($weight) as u32, $strategy))+
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new()$(.or(1u32, $strategy))+
    };
}

/// Define property tests. Each function's arguments are drawn from the
/// given strategies `cases` times; a panic in the body fails the test and
/// prints the generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($config) $($rest)*);
    };
    (@expand ($config:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng =
                $crate::test_runner::TestRng::for_label(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let values = ($( $crate::Strategy::generate(&($strategy), &mut rng), )+);
                let mut guard =
                    $crate::test_runner::CaseGuard::new(case, format!("{:?}", values));
                let ($($arg,)+) = values;
                $body
                guard.disarm();
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Push(u32),
        Pop,
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples_stay_in_bounds(
            a in 3u64..10,
            pair in (0usize..4, 100i64..=105),
        ) {
            prop_assert!((3..10).contains(&a));
            prop_assert!(pair.0 < 4);
            prop_assert!((100..=105).contains(&pair.1));
        }

        #[test]
        fn collections_honor_length(items in proptest::collection::vec(any::<u16>(), 2..9)) {
            prop_assert!((2..9).contains(&items.len()));
        }

        #[test]
        fn oneof_and_map_produce_all_branches(
            ops in proptest::collection::vec(
                prop_oneof![2 => (0u32..9).prop_map(Op::Push), 1 => Just(Op::Pop)],
                64..65,
            )
        ) {
            prop_assert!(ops.iter().any(|o| matches!(o, Op::Push(_))));
            prop_assert!(ops.contains(&Op::Pop));
        }
    }

    #[test]
    fn same_label_gives_identical_sequences() {
        let mut a = crate::test_runner::TestRng::for_label("x");
        let mut b = crate::test_runner::TestRng::for_label("x");
        let mut c = crate::test_runner::TestRng::for_label("y");
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }
}
