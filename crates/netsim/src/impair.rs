//! Link impairments — netem-style loss, duplication, corruption, delay
//! and reordering applied at wire delivery.
//!
//! The calibrated testbed profiles derive their noise from *component*
//! models (NICs, clocks, co-tenants); this module adds the classic
//! link-level fault knobs so users can explore how the κ metric responds
//! to each failure class in isolation — e.g. "how many random drops does
//! it take to move κ by 0.01?" — and so failure-injection tests have a
//! first-class lever.

use crate::rng::{DetRng, Jitter};

/// Impairments applied to packets crossing a link (one direction).
///
/// ```
/// use choir_netsim::LinkImpairments;
///
/// let clean = LinkImpairments::none();
/// assert!(clean.is_none());
/// let lossy = LinkImpairments::lossy(0.01);
/// assert!(!lossy.is_none());
/// ```
#[derive(Debug, Clone)]
pub struct LinkImpairments {
    /// Probability a packet is silently dropped.
    pub loss_prob: f64,
    /// Probability a packet is delivered twice (the copy follows after
    /// `dup_gap`).
    pub dup_prob: f64,
    /// Extra delay added to every packet.
    pub extra_delay: Jitter,
    /// Probability a packet is held back by `reorder_hold` (overtaken by
    /// its successors — net-em's reorder knob).
    pub reorder_prob: f64,
    /// How long a reordered packet is held, beyond `extra_delay`.
    pub reorder_hold: Jitter,
    /// Gap between the original and a duplicate delivery.
    pub dup_gap: Jitter,
    /// Probability the frame is corrupted in flight (its trailer bytes
    /// flip, changing its identity — the paper's "corrupted packets"
    /// case of U, §3).
    pub corrupt_prob: f64,
}

impl LinkImpairments {
    /// A clean link: no impairments.
    pub fn none() -> Self {
        LinkImpairments {
            loss_prob: 0.0,
            dup_prob: 0.0,
            extra_delay: Jitter::None,
            reorder_prob: 0.0,
            reorder_hold: Jitter::None,
            dup_gap: Jitter::Const(1_000),
            corrupt_prob: 0.0,
        }
    }

    /// Uniform random loss.
    pub fn lossy(p: f64) -> Self {
        LinkImpairments {
            loss_prob: p,
            ..Self::none()
        }
    }

    /// True when every knob is off (the engine skips sampling entirely).
    pub fn is_none(&self) -> bool {
        self.loss_prob == 0.0
            && self.dup_prob == 0.0
            && matches!(self.extra_delay, Jitter::None)
            && self.reorder_prob == 0.0
            && self.corrupt_prob == 0.0
    }

    /// Decide this packet's fate. Returns `None` for a drop, otherwise
    /// the list of (extra delay, corrupted?) deliveries to make (one
    /// entry normally, two when duplicated).
    pub fn apply(&self, rng: &mut DetRng) -> Option<Deliveries> {
        if self.loss_prob > 0.0 && rng.chance(self.loss_prob) {
            return None;
        }
        let mut delay = self.extra_delay.sample_delay(rng);
        if self.reorder_prob > 0.0 && rng.chance(self.reorder_prob) {
            delay += self.reorder_hold.sample_delay(rng);
        }
        let corrupt = self.corrupt_prob > 0.0 && rng.chance(self.corrupt_prob);
        let dup = if self.dup_prob > 0.0 && rng.chance(self.dup_prob) {
            Some(delay + self.dup_gap.sample_delay(rng))
        } else {
            None
        };
        Some(Deliveries {
            delay_ps: delay,
            corrupt,
            duplicate_delay_ps: dup,
        })
    }
}

impl Default for LinkImpairments {
    fn default() -> Self {
        Self::none()
    }
}

/// Outcome of [`LinkImpairments::apply`] for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deliveries {
    /// Extra delay for the (possibly corrupted) primary delivery.
    pub delay_ps: u64,
    /// Whether the primary delivery is corrupted.
    pub corrupt: bool,
    /// If duplicated: extra delay of the duplicate.
    pub duplicate_delay_ps: Option<u64>,
}

/// Flip the last byte of a frame — enough to change a Choir-tagged
/// packet's identity (it corrupts the tag's sequence number) while
/// keeping the frame parseable.
pub fn corrupt_frame(frame: &choir_packet::Frame) -> choir_packet::Frame {
    let mut data = frame.data.to_vec();
    if let Some(last) = data.last_mut() {
        *last ^= 0xFF;
    }
    choir_packet::Frame::truncated(bytes::Bytes::from(data), frame.orig_len() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use choir_packet::{ChoirTag, Frame};

    fn rng() -> DetRng {
        DetRng::derive(77, &["impair"])
    }

    #[test]
    fn clean_link_passes_everything_unchanged() {
        let imp = LinkImpairments::none();
        assert!(imp.is_none());
        let mut r = rng();
        for _ in 0..100 {
            let d = imp.apply(&mut r).expect("no loss");
            assert_eq!(d.delay_ps, 0);
            assert!(!d.corrupt);
            assert_eq!(d.duplicate_delay_ps, None);
        }
    }

    #[test]
    fn loss_probability_is_respected() {
        let imp = LinkImpairments::lossy(0.3);
        let mut r = rng();
        let n = 20_000;
        let dropped = (0..n).filter(|_| imp.apply(&mut r).is_none()).count();
        let rate = dropped as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "loss rate {rate}");
    }

    #[test]
    fn duplication_produces_second_delivery_after_the_first() {
        let imp = LinkImpairments {
            dup_prob: 1.0,
            dup_gap: Jitter::Const(5_000),
            ..LinkImpairments::none()
        };
        let mut r = rng();
        let d = imp.apply(&mut r).unwrap();
        assert_eq!(d.duplicate_delay_ps, Some(d.delay_ps + 5_000));
    }

    #[test]
    fn reordering_holds_back_some_packets() {
        let imp = LinkImpairments {
            reorder_prob: 0.5,
            reorder_hold: Jitter::Const(1_000_000),
            ..LinkImpairments::none()
        };
        let mut r = rng();
        let delays: Vec<u64> = (0..1_000)
            .map(|_| imp.apply(&mut r).unwrap().delay_ps)
            .collect();
        let held = delays.iter().filter(|&&d| d >= 1_000_000).count();
        assert!((400..600).contains(&held), "held {held}");
        assert!(delays.contains(&0));
    }

    #[test]
    fn corruption_changes_identity_but_not_length() {
        let mut buf = vec![0u8; 60];
        ChoirTag::new(1, 0, 9).stamp_trailer(&mut buf);
        let f = Frame::new(Bytes::from(buf));
        let c = corrupt_frame(&f);
        assert_eq!(c.len(), f.len());
        assert_eq!(c.orig_len(), f.orig_len());
        assert_ne!(c.packet_id(), f.packet_id());
    }

    #[test]
    fn corrupt_empty_frame_is_harmless() {
        let f = Frame::new(Bytes::new());
        let c = corrupt_frame(&f);
        assert!(c.is_empty());
    }
}
