//! End-to-end daemon test: 3 tenants × 4 streams over real sockets,
//! hard-killed and restarted mid-ingest, with every served κ required
//! to be **bit-identical** (`f64::to_bits`) to a post-hoc batch
//! analysis of the same records — the service's load-bearing contract.

use std::path::PathBuf;

use choir_core::metrics::{
    all_pairs_sharded_with, KappaConfig, Observation, PairAnalyzer, Trial,
};
use choir_packet::tag::ChoirTag;
use choir_packet::PacketId;
use choir_service::{Client, Daemon, DaemonConfig, Response};

const TENANTS: usize = 3;
const STREAMS: [&str; 4] = ["base", "r1", "r2", "r3"];
const RECORDS: u64 = 600;

fn lcg(s: &mut u64) -> u64 {
    *s = s
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *s >> 33
}

/// Deterministic synthetic capture: stream 0 is the clean baseline;
/// later streams drop ~1% of packets and jitter arrival times, so κ is
/// strictly inside (0, 1) and every component is exercised.
fn synth(tenant: u64, stream: u64) -> Vec<Observation> {
    let mut seed = 0x5EED_0001 ^ (tenant << 32) ^ stream;
    let mut out = Vec::new();
    let mut now = 1_000_000u64;
    for seq in 0..RECORDS {
        now += 280_000 + lcg(&mut seed) % 40_000;
        if stream > 0 && lcg(&mut seed).is_multiple_of(97) {
            continue; // drop
        }
        let jitter = if stream == 0 {
            0
        } else {
            lcg(&mut seed) % 30_000
        };
        out.push(Observation {
            id: PacketId::from_tag(&ChoirTag::new(tenant as u16, 0, seq)),
            t_ps: now + jitter,
        });
    }
    out
}

fn trial_of(obs: &[Observation]) -> Trial {
    let mut t = Trial::new();
    for o in obs {
        t.push(o.id, o.t_ps);
    }
    t
}

fn tenant_name(t: usize) -> String {
    format!("tenant-{t}")
}

fn tmp_dir(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("choir-daemon-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

#[test]
fn kill_restart_mid_ingest_serves_bit_identical_kappa() {
    let dir = tmp_dir("killrestart");
    let mut cfg = DaemonConfig::new(&dir);
    // Small budget (each 600-record trial is ~14.4 KB, four per tenant)
    // so evictions happen, and a short checkpoint cadence so the kill
    // lands between a checkpoint and journal tail.
    cfg.default_budget_bytes = 16_000;
    cfg.checkpoint_every_records = 700;
    cfg.snapshot_every = 128;

    let data: Vec<Vec<Vec<Observation>>> = (0..TENANTS)
        .map(|t| (0..STREAMS.len()).map(|s| synth(t as u64, s as u64)).collect())
        .collect();

    // ---- phase 1: ingest a bit over half of everything, interleaved.
    let handle = Daemon::spawn(cfg.clone(), "127.0.0.1:0").expect("spawn");
    let addr = handle.addr();
    let mut c = Client::connect(addr).expect("connect");
    c.ping().expect("ping");
    for t in 0..TENANTS {
        c.create_tenant(&tenant_name(t), 0).expect("create tenant");
        for s in STREAMS {
            c.open_stream(&tenant_name(t), s).expect("open stream");
        }
    }

    let mut sent = vec![vec![0usize; STREAMS.len()]; TENANTS];
    let chunk = 83usize;
    let rounds_phase1 = 4; // 4 * 83 = 332 of ≤600 records per stream
    for _ in 0..rounds_phase1 {
        for t in 0..TENANTS {
            for (si, s) in STREAMS.iter().enumerate() {
                let all = &data[t][si];
                let lo = sent[t][si];
                let hi = (lo + chunk).min(all.len());
                if lo < hi {
                    let total = c
                        .ingest(&tenant_name(t), s, lo as u64, &all[lo..hi])
                        .expect("ingest");
                    assert_eq!(total, hi as u64);
                    sent[t][si] = hi;
                }
            }
        }
    }

    // Live snapshot of a mid-flight stream must already be bit-identical
    // to batch analysis of the prefix fed so far.
    {
        let (t, si) = (0, 1);
        let Response::Snapshot { running, .. } = c
            .snapshot(&tenant_name(t), STREAMS[si])
            .expect("live snapshot")
        else {
            panic!("snapshot variant");
        };
        let a = trial_of(&data[t][0][..sent[t][0]]);
        let b = trial_of(&data[t][si][..sent[t][si]]);
        let batch = PairAnalyzer::new(&a, &b).analyze();
        assert_eq!(
            running.kappa_bits,
            batch.metrics.kappa.to_bits(),
            "live κ must equal batch κ on the ingested prefix"
        );
    }

    // ---- hard kill: no checkpoint, no goodbye.
    drop(c);
    handle.kill();

    // ---- restart: recover from checkpoint + journal, finish ingest.
    let handle = Daemon::spawn(cfg.clone(), "127.0.0.1:0").expect("respawn");
    let mut c = Client::connect(handle.addr()).expect("reconnect");
    for (t, sent_t) in sent.iter().enumerate() {
        for (si, s) in STREAMS.iter().enumerate() {
            let (ingested, finished, baseline) =
                c.stream_status(&tenant_name(t), s).expect("status");
            assert_eq!(
                ingested as usize, sent_t[si],
                "recovery must restore {}/{s} exactly",
                tenant_name(t)
            );
            assert!(!finished);
            assert_eq!(baseline, si == 0);
        }
    }
    for t in 0..TENANTS {
        for (si, s) in STREAMS.iter().enumerate() {
            let all = &data[t][si];
            // Deliberately resend a 25-record overlap: the daemon must
            // deduplicate (idempotent client resume after reconnect).
            let lo = sent[t][si].saturating_sub(25);
            let total = c
                .ingest(&tenant_name(t), s, lo as u64, &all[lo..])
                .expect("resume ingest");
            assert_eq!(total, all.len() as u64);
        }
    }

    // ---- finish everything; collect served finals.
    let mut served = vec![vec![None; STREAMS.len()]; TENANTS];
    for (t, served_t) in served.iter_mut().enumerate() {
        assert!(c
            .finish_stream(&tenant_name(t), "base")
            .expect("finish baseline")
            .is_none());
        for (si, s) in STREAMS.iter().enumerate().skip(1) {
            let f = c
                .finish_stream(&tenant_name(t), s)
                .expect("finish stream")
                .expect("comparison summary");
            served_t[si] = Some(f);
        }
    }

    // ---- the gate: every served κ equals uninterrupted batch, bit for
    // bit, across the kill/restart and any store evictions.
    for t in 0..TENANTS {
        let a = trial_of(&data[t][0]);
        for (si, _) in STREAMS.iter().enumerate().skip(1) {
            let b = trial_of(&data[t][si]);
            let batch = PairAnalyzer::new(&a, &b).analyze();
            let f = served[t][si].as_ref().expect("served final");
            assert_eq!(f.score.kappa_bits, batch.metrics.kappa.to_bits());
            assert_eq!(f.score.u.to_bits(), batch.metrics.u.to_bits());
            assert_eq!(f.score.o.to_bits(), batch.metrics.o.to_bits());
            assert_eq!(f.score.l.to_bits(), batch.metrics.l.to_bits());
            assert_eq!(f.score.i.to_bits(), batch.metrics.i.to_bits());
            assert_eq!(f.a_len as usize, a.len());
            assert_eq!(f.b_len as usize, b.len());

            // A post-finish snapshot serves the stored summary.
            let Response::Snapshot { running, .. } =
                c.snapshot(&tenant_name(t), STREAMS[si]).expect("final snapshot")
            else {
                panic!("snapshot variant");
            };
            assert_eq!(running.kappa_bits, batch.metrics.kappa.to_bits());
        }
    }

    // ---- matrix: bit-identical to the sharded all-pairs engine over
    // the same trials in the daemon's (sorted) label order.
    for (t, data_t) in data.iter().enumerate() {
        let Response::Matrix { labels, cells } =
            c.matrix(&tenant_name(t)).expect("matrix")
        else {
            panic!("matrix variant");
        };
        let mut order: Vec<&str> = STREAMS.to_vec();
        order.sort_unstable();
        assert_eq!(labels, order);
        let trials: Vec<Trial> = order
            .iter()
            .map(|s| {
                let si = STREAMS.iter().position(|x| x == s).expect("known stream");
                trial_of(&data_t[si])
            })
            .collect();
        let (reference, _) =
            all_pairs_sharded_with(&trials, 4, &KappaConfig::paper()).expect("all-pairs");
        assert_eq!(cells.len(), reference.pairs());
        for cell in &cells {
            let want = reference
                .get(cell.i as usize, cell.j as usize)
                .expect("reference cell");
            assert_eq!(cell.score.kappa_bits, want.metrics.kappa.to_bits());
            assert_eq!(cell.common as usize, want.common);
        }
    }

    // ---- the budget held: evictions happened, residency stayed under.
    let Response::Stats {
        store_resident_bytes,
        store_budget_bytes,
        store_evictions,
        store_reloads,
        records,
        ..
    } = c.stats().expect("stats")
    else {
        panic!("stats variant");
    };
    assert!(store_evictions > 0, "budget was sized to force evictions");
    assert!(store_reloads > 0, "matrix queries must have reloaded spills");
    assert!(
        store_resident_bytes <= store_budget_bytes,
        "resident {store_resident_bytes} exceeds budget {store_budget_bytes}"
    );
    assert!(records > 0, "the restarted daemon accepted the tail records");

    // ---- graceful shutdown checkpoints; a fresh daemon serves the
    // same finals from durable state alone.
    c.shutdown().expect("shutdown");
    handle.wait();
    let handle = Daemon::spawn(cfg, "127.0.0.1:0").expect("third spawn");
    let mut c = Client::connect(handle.addr()).expect("third connect");
    for (t, data_t) in data.iter().enumerate() {
        let a = trial_of(&data_t[0]);
        for (si, s) in STREAMS.iter().enumerate().skip(1) {
            let b = trial_of(&data_t[si]);
            let batch = PairAnalyzer::new(&a, &b).analyze();
            let Response::Snapshot { running, .. } =
                c.snapshot(&tenant_name(t), s).expect("post-restart snapshot")
            else {
                panic!("snapshot variant");
            };
            assert_eq!(
                running.kappa_bits,
                batch.metrics.kappa.to_bits(),
                "finals must survive shutdown/restart bit-identically"
            );
        }
    }
    drop(c);
    handle.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A comparison stream opened *after* the baseline has already ingested
/// data must still converge on batch-identical κ: later baseline growth
/// may not push the fresh tail into its engine before the missed prefix
/// has been fed (records would arrive out of order and duplicated).
#[test]
fn late_opened_stream_is_bit_identical_to_batch() {
    let dir = tmp_dir("lateopen");
    let cfg = DaemonConfig::new(&dir);
    let handle = Daemon::spawn(cfg, "127.0.0.1:0").expect("spawn");
    let mut c = Client::connect(handle.addr()).expect("connect");

    let base = synth(4, 0);
    let ontime = synth(4, 1);
    let late = synth(4, 2);

    c.create_tenant("acme", 0).expect("create");
    c.open_stream("acme", "base").expect("open baseline");
    // `ontime` exists from the start and stays caught up throughout.
    c.open_stream("acme", "ontime").expect("open ontime");

    // Baseline ingests a prefix before `late` exists.
    c.ingest("acme", "base", 0, &base[..200]).expect("base prefix");
    c.open_stream("acme", "late").expect("open late");

    // Baseline grows again: `late`'s engine lags side A by 200 records
    // here, while `ontime`'s is exactly caught up — the growth path has
    // to handle both in the same loop.
    c.ingest("acme", "base", 200, &base[200..400]).expect("base growth");

    c.ingest("acme", "ontime", 0, &ontime).expect("ontime records");
    c.ingest("acme", "late", 0, &late).expect("late records");

    // Live snapshots against the current baseline prefix.
    for (name, data) in [("ontime", &ontime), ("late", &late)] {
        let Response::Snapshot { running, .. } =
            c.snapshot("acme", name).expect("live snapshot")
        else {
            panic!("snapshot variant");
        };
        let a = trial_of(&base[..400]);
        let b = trial_of(data);
        let batch = PairAnalyzer::new(&a, &b).analyze();
        assert_eq!(
            running.kappa_bits,
            batch.metrics.kappa.to_bits(),
            "live κ of `{name}` must equal batch κ on the ingested prefix"
        );
    }

    // Drain the baseline and finish everything; finals must match an
    // uninterrupted batch analysis bit for bit.
    c.ingest("acme", "base", 400, &base[400..]).expect("base tail");
    assert!(c.finish_stream("acme", "base").expect("finish base").is_none());
    let a = trial_of(&base);
    for (name, data) in [("ontime", &ontime), ("late", &late)] {
        let f = c
            .finish_stream("acme", name)
            .expect("finish stream")
            .expect("comparison summary");
        let batch = PairAnalyzer::new(&a, &trial_of(data)).analyze();
        assert_eq!(
            f.score.kappa_bits,
            batch.metrics.kappa.to_bits(),
            "final κ of `{name}` must equal batch κ"
        );
        assert_eq!(f.a_len as usize, base.len());
        assert_eq!(f.b_len as usize, data.len());
    }

    drop(c);
    handle.kill();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn gap_and_foreign_requests_are_refused_not_fatal() {
    let dir = tmp_dir("refusals");
    let cfg = DaemonConfig::new(&dir);
    let handle = Daemon::spawn(cfg, "127.0.0.1:0").expect("spawn");
    let mut c = Client::connect(handle.addr()).expect("connect");

    assert!(c.open_stream("ghost", "s").is_err(), "no such tenant");
    c.create_tenant("acme", 0).expect("create");
    assert!(c.create_tenant("acme", 0).is_err(), "duplicate tenant");
    assert!(c.create_tenant("bad/name", 0).is_err(), "invalid name");

    // A tenant with no streams must refuse ingest/finish — not panic
    // the daemon (a panic here would also be journaled and replayed
    // into a restart crash loop).
    let obs = synth(9, 0);
    assert!(
        c.ingest("acme", "nosuch", 0, &obs[..5]).is_err(),
        "ingest into a streamless tenant"
    );
    assert!(
        c.finish_stream("acme", "nosuch").is_err(),
        "finish on a streamless tenant"
    );
    c.ping().expect("daemon survived streamless ingest/finish");
    c.open_stream("acme", "base").expect("open baseline");
    c.open_stream("acme", "b").expect("open comparison");

    // Gap: stream is empty but the batch claims to start at 10.
    assert!(c.ingest("acme", "b", 10, &obs[..20]).is_err(), "ingest gap");
    // Comparison streams cannot finish before the baseline does.
    c.ingest("acme", "b", 0, &obs[..20]).expect("ingest");
    assert!(c.finish_stream("acme", "b").is_err(), "baseline still live");
    // The connection survived every refusal.
    c.ping().expect("still alive");
    // The baseline has no κ of its own.
    assert!(c.snapshot("acme", "base").is_err(), "baseline snapshot");

    drop(c);
    handle.kill();
    let _ = std::fs::remove_dir_all(&dir);
}
