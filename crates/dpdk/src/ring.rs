//! A lock-free single-producer/single-consumer ring.
//!
//! This is the descriptor-ring analogue of DPDK's `rte_ring` in its
//! SP/SC mode: a fixed power-of-two capacity, producer and consumer
//! cursors, and release/acquire publication of slots. It carries packets
//! between the application thread and the simulated-NIC thread in the
//! real-time backend, where the replay hot loop must never take a lock.
//!
//! The implementation follows the classic bounded SPSC design (see *Rust
//! Atomics and Locks*, ch. 5): `head` is written only by the consumer,
//! `tail` only by the producer; each side reads the other's cursor with
//! `Acquire` and publishes its own with `Release`, which is exactly the
//! happens-before edge needed for the payload to be visible.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct RingInner<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the producer will write (only producer stores).
    tail: AtomicUsize,
    /// Next slot the consumer will read (only consumer stores).
    head: AtomicUsize,
}

// SAFETY: the producer/consumer split (enforced by the two handle types
// below, which are !Clone and own their side) guarantees each slot is
// accessed by at most one thread at a time, with Acquire/Release ordering
// establishing visibility of the payload.
unsafe impl<T: Send> Send for RingInner<T> {}
unsafe impl<T: Send> Sync for RingInner<T> {}

/// Producer handle of an SPSC ring.
pub struct Producer<T> {
    inner: Arc<RingInner<T>>,
    /// Cached copy of `head` to avoid a shared load on every push.
    cached_head: usize,
}

/// Consumer handle of an SPSC ring.
pub struct Consumer<T> {
    inner: Arc<RingInner<T>>,
    /// Cached copy of `tail` to avoid a shared load on every pop.
    cached_tail: usize,
}

/// A bounded single-producer/single-consumer ring. Construct with
/// [`SpscRing::with_capacity`], then split into handles.
///
/// ```
/// use choir_dpdk::SpscRing;
///
/// let (mut tx, mut rx) = SpscRing::with_capacity::<u32>(4);
/// tx.push(7).unwrap();
/// tx.push(8).unwrap();
/// assert_eq!(rx.pop(), Some(7));
/// assert_eq!(rx.pop(), Some(8));
/// assert_eq!(rx.pop(), None);
/// ```
pub struct SpscRing;

impl SpscRing {
    /// Create a ring holding up to `capacity` items (rounded up to a power
    /// of two) and split it into its two endpoint handles.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_capacity<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
        assert!(capacity > 0, "ring capacity must be positive");
        let cap = capacity.next_power_of_two();
        let slots = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        let inner = Arc::new(RingInner {
            slots,
            mask: cap - 1,
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
        });
        (
            Producer {
                inner: Arc::clone(&inner),
                cached_head: 0,
            },
            Consumer {
                inner,
                cached_tail: 0,
            },
        )
    }
}

impl<T> Producer<T> {
    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }

    /// Attempt to enqueue; returns the value back when the ring is full.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        if tail.wrapping_sub(self.cached_head) == self.capacity() {
            // Refresh the consumer cursor; it may have advanced.
            self.cached_head = self.inner.head.load(Ordering::Acquire);
            if tail.wrapping_sub(self.cached_head) == self.capacity() {
                return Err(value);
            }
        }
        let idx = tail & self.inner.mask;
        // SAFETY: slot `tail` is beyond the consumer's reach (checked above)
        // and only this producer writes slots.
        unsafe {
            (*self.inner.slots[idx].get()).write(value);
        }
        self.inner.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Enqueue as many items from `iter` as fit; returns how many were
    /// accepted.
    pub fn push_bulk<I: IntoIterator<Item = T>>(&mut self, iter: I) -> (usize, Option<T>) {
        let mut n = 0;
        for v in iter {
            match self.push(v) {
                Ok(()) => n += 1,
                Err(v) => return (n, Some(v)),
            }
        }
        (n, None)
    }

    /// Number of items currently queued (approximate under concurrency).
    pub fn len(&self) -> usize {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        let head = self.inner.head.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// True when no items are queued (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Consumer<T> {
    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }

    /// Attempt to dequeue one item.
    pub fn pop(&mut self) -> Option<T> {
        let head = self.inner.head.load(Ordering::Relaxed);
        if head == self.cached_tail {
            self.cached_tail = self.inner.tail.load(Ordering::Acquire);
            if head == self.cached_tail {
                return None;
            }
        }
        let idx = head & self.inner.mask;
        // SAFETY: the producer published this slot with Release; we observed
        // its tail with Acquire, so the write happens-before this read, and
        // the producer will not touch the slot again until we advance head.
        let value = unsafe { (*self.inner.slots[idx].get()).assume_init_read() };
        self.inner.head.store(head.wrapping_add(1), Ordering::Release);
        Some(value)
    }

    /// Pop up to `max` items into `out`; returns how many were taken.
    pub fn pop_bulk(&mut self, out: &mut Vec<T>, max: usize) -> usize {
        let mut n = 0;
        while n < max {
            match self.pop() {
                Some(v) => {
                    out.push(v);
                    n += 1;
                }
                None => break,
            }
        }
        n
    }

    /// Number of items currently queued (approximate under concurrency).
    pub fn len(&self) -> usize {
        let tail = self.inner.tail.load(Ordering::Acquire);
        let head = self.inner.head.load(Ordering::Relaxed);
        tail.wrapping_sub(head)
    }

    /// True when no items are queued (approximate under concurrency).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Drop for RingInner<T> {
    fn drop(&mut self) {
        // Drain any remaining initialized slots. We have exclusive access.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        let mut i = head;
        while i != tail {
            let idx = i & self.mask;
            // SAFETY: slots in [head, tail) hold initialized values that
            // were never popped.
            unsafe {
                (*self.slots[idx].get()).assume_init_drop();
            }
            i = i.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_single_thread() {
        let (mut p, mut c) = SpscRing::with_capacity::<u32>(8);
        for i in 0..8 {
            p.push(i).unwrap();
        }
        assert!(p.push(99).is_err());
        for i in 0..8 {
            assert_eq!(c.pop(), Some(i));
        }
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let (p, _c) = SpscRing::with_capacity::<u8>(5);
        assert_eq!(p.capacity(), 8);
    }

    #[test]
    fn wraparound_many_times() {
        let (mut p, mut c) = SpscRing::with_capacity::<usize>(4);
        for i in 0..1000 {
            p.push(i).unwrap();
            assert_eq!(c.pop(), Some(i));
        }
        assert!(c.is_empty());
    }

    #[test]
    fn push_bulk_partial() {
        let (mut p, mut c) = SpscRing::with_capacity::<u32>(4);
        let (n, rejected) = p.push_bulk(0..10);
        assert_eq!(n, 4);
        assert_eq!(rejected, Some(4));
        let mut out = Vec::new();
        assert_eq!(c.pop_bulk(&mut out, 10), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn len_tracks_occupancy() {
        let (mut p, mut c) = SpscRing::with_capacity::<u8>(8);
        assert!(p.is_empty());
        p.push(1).unwrap();
        p.push(2).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(c.len(), 2);
        c.pop();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn drop_releases_queued_items() {
        let item = Arc::new(());
        let (mut p, c) = SpscRing::with_capacity::<Arc<()>>(4);
        p.push(Arc::clone(&item)).unwrap();
        p.push(Arc::clone(&item)).unwrap();
        assert_eq!(Arc::strong_count(&item), 3);
        drop(p);
        drop(c);
        assert_eq!(Arc::strong_count(&item), 1);
    }

    #[test]
    fn cross_thread_transfer_preserves_order_and_count() {
        const N: usize = 200_000;
        let (mut p, mut c) = SpscRing::with_capacity::<usize>(1024);
        let producer = std::thread::spawn(move || {
            for i in 0..N {
                loop {
                    match p.push(i) {
                        Ok(()) => break,
                        Err(_) => std::hint::spin_loop(),
                    }
                }
            }
        });
        let mut expected = 0usize;
        while expected < N {
            if let Some(v) = c.pop() {
                assert_eq!(v, expected, "out-of-order item");
                expected += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        producer.join().unwrap();
        assert_eq!(c.pop(), None);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = SpscRing::with_capacity::<u8>(0);
    }
}
