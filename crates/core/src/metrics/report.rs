//! Full per-run analysis bundles — everything the paper reports about one
//! run-vs-baseline comparison, computed in a single pass over the
//! matching, plus the multi-run aggregation used by Table 2.

use serde::{Deserialize, Serialize};

use super::histogram::DeltaHistogram;
use super::iat::iat_full;
use super::kappa::{ConsistencyMetrics, KappaConfig};
use super::latency::latency_full;
use super::matching::Matching;
use super::ordering::{ordering, EditScriptStats};
use super::trial::Trial;
use super::uniqueness::uniqueness;

/// The complete analysis of one run against the baseline run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrialComparison {
    /// Run label ("B", "C", …).
    pub label: String,
    /// The four metrics and κ.
    pub metrics: ConsistencyMetrics,
    /// Packets in the baseline trial.
    pub a_len: usize,
    /// Packets in this run's trial.
    pub b_len: usize,
    /// `|A ∩ B|`.
    pub common: usize,
    /// Packets of the baseline missing from this run (drops).
    pub missing: usize,
    /// Packets of this run not present in the baseline.
    pub extra: usize,
    /// Packets moved by the edit script (reordered).
    pub moved: usize,
    /// Fraction of common packets with |ΔIAT| ≤ 10 ns — the paper's
    /// headline per-run statistic.
    pub iat_within_10ns: f64,
    /// Percentiles (p50, p90, p99) of |ΔIAT| in nanoseconds.
    pub iat_abs_percentiles_ns: (f64, f64, f64),
    /// Percentiles (p50, p90, p99) of |Δlatency| in nanoseconds.
    pub latency_abs_percentiles_ns: (f64, f64, f64),
    /// Edit-script distance statistics (Table 1).
    pub edit_stats: EditScriptStats,
    /// Figure-style IAT delta histogram.
    pub iat_hist: DeltaHistogram,
    /// Figure-style latency delta histogram.
    pub latency_hist: DeltaHistogram,
}

/// Analyze run `b` against baseline `a` with the paper's κ formula.
pub fn analyze(label: impl Into<String>, a: &Trial, b: &Trial) -> TrialComparison {
    analyze_with(label, a, b, &KappaConfig::paper())
}

/// Analyze with a custom κ configuration.
pub fn analyze_with(
    label: impl Into<String>,
    a: &Trial,
    b: &Trial,
    cfg: &KappaConfig,
) -> TrialComparison {
    let m = Matching::build(a, b);
    let u = uniqueness(&m);
    let ord = ordering(&m);
    let lat = latency_full(a, b, &m);
    let ia = iat_full(a, b, &m);
    let metrics = cfg.combine(u, ord.o, lat.l, ia.i);

    let iat_hist = DeltaHistogram::of(ia.deltas_ns.iter().copied());
    let latency_hist = DeltaHistogram::of(lat.deltas_ns.iter().copied());
    let within = super::stats::fraction_within(ia.deltas_ns.iter().copied(), 10.0);

    let percentiles = |deltas: &[f64]| -> (f64, f64, f64) {
        if deltas.is_empty() {
            return (0.0, 0.0, 0.0);
        }
        let mut abs: Vec<f64> = deltas.iter().map(|d| d.abs()).collect();
        abs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN deltas"));
        (
            super::stats::percentile_sorted(&abs, 50.0),
            super::stats::percentile_sorted(&abs, 90.0),
            super::stats::percentile_sorted(&abs, 99.0),
        )
    };
    let iat_abs_percentiles_ns = percentiles(&ia.deltas_ns);
    let latency_abs_percentiles_ns = percentiles(&lat.deltas_ns);

    TrialComparison {
        label: label.into(),
        metrics,
        a_len: m.a_len,
        b_len: m.b_len,
        common: m.common(),
        missing: m.missing_in_b(),
        extra: m.extra_in_b(),
        moved: ord.moved(),
        iat_within_10ns: within,
        iat_abs_percentiles_ns,
        latency_abs_percentiles_ns,
        edit_stats: ord.stats(),
        iat_hist,
        latency_hist,
    }
}

/// Analyze several runs against one baseline concurrently (each run's
/// matching/LIS/histograms are independent). Results keep input order;
/// labels "B", "C", … are assigned positionally, as the paper names its
/// runs.
pub fn analyze_runs_parallel(baseline: &Trial, runs: &[Trial]) -> Vec<TrialComparison> {
    const LABELS: [&str; 12] = ["B", "C", "D", "E", "F", "G", "H", "I", "J", "K", "L", "M"];
    std::thread::scope(|s| {
        let handles: Vec<_> = runs
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let label = LABELS.get(i).copied().unwrap_or("?");
                s.spawn(move || analyze(label, baseline, t))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("analysis thread"))
            .collect()
    })
}

/// All runs of one environment compared against run A — one evaluation
/// "row" of the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Environment name ("Local Single-Replayer", …).
    pub environment: String,
    /// Comparisons of runs B, C, D, E… against run A.
    pub runs: Vec<TrialComparison>,
    /// Component-wise mean across runs (a Table 2 row).
    pub mean: ConsistencyMetrics,
    /// Sample standard deviation of κ across runs — the run-to-run spread
    /// the paper's per-section run lists exhibit (its FABRIC dedicated κ
    /// varied from 0.65 to 0.82 within one test, §7).
    pub kappa_stddev: f64,
    /// Graceful-degradation events aggregated across the experiment's
    /// middleboxes and replay engines (all-zero for a clean run), so a
    /// κ value is always read next to how degraded the run that
    /// produced it was.
    pub degradation: crate::replay::DegradationReport,
}

impl RunReport {
    /// Assemble a report from per-run comparisons.
    ///
    /// # Panics
    /// Panics if `runs` is empty.
    pub fn new(environment: impl Into<String>, runs: Vec<TrialComparison>) -> Self {
        let mean =
            ConsistencyMetrics::mean_of(&runs.iter().map(|r| r.metrics).collect::<Vec<_>>());
        let kappa_stddev =
            super::stats::Summary::of(runs.iter().map(|r| r.metrics.kappa)).stddev;
        RunReport {
            environment: environment.into(),
            runs,
            mean,
            kappa_stddev,
            degradation: crate::replay::DegradationReport::default(),
        }
    }

    /// Attach the experiment's aggregated degradation counters.
    pub fn with_degradation(mut self, degradation: crate::replay::DegradationReport) -> Self {
        self.degradation = degradation;
        self
    }

    /// A merged IAT histogram across all runs (used when rendering a
    /// single figure for the environment).
    pub fn merged_iat_hist(&self) -> DeltaHistogram {
        let mut h = DeltaHistogram::new();
        for r in &self.runs {
            h.merge(&r.iat_hist);
        }
        h
    }

    /// A merged latency histogram across all runs.
    pub fn merged_latency_hist(&self) -> DeltaHistogram {
        let mut h = DeltaHistogram::new();
        for r in &self.runs {
            h.merge(&r.latency_hist);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cbr_trial(n: u64, gap: u64, jitter: impl Fn(u64) -> i64) -> Trial {
        let mut t = Trial::new();
        for i in 0..n {
            let base = (i * gap) as i64;
            t.push_tagged(0, 0, i, (base + jitter(i)).max(0) as u64);
        }
        t
    }

    #[test]
    fn analyze_consistent_pair() {
        let a = cbr_trial(1000, 284_800, |_| 0);
        let b = cbr_trial(1000, 284_800, |i| ((i % 7) as i64 - 3) * 1000); // ±3 ns
        let c = analyze("B", &a, &b);
        assert_eq!(c.metrics.u, 0.0);
        assert_eq!(c.metrics.o, 0.0);
        assert_eq!(c.missing, 0);
        assert!(c.iat_within_10ns > 0.99);
        assert!(c.metrics.kappa > 0.95);
        assert_eq!(c.iat_hist.total(), 1000);
        assert_eq!(c.latency_hist.total(), 1000);
        // Percentiles are ordered and bounded by the jitter we injected.
        let (p50, p90, p99) = c.iat_abs_percentiles_ns;
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p99 <= 12.0, "p99 {p99}");
    }

    #[test]
    fn analyze_with_drops() {
        let a = cbr_trial(100, 1000, |_| 0);
        let mut b = Trial::new();
        for i in 0..100u64 {
            if i != 50 && i != 51 {
                b.push_tagged(0, 0, i, i * 1000);
            }
        }
        let c = analyze("B", &a, &b);
        assert_eq!(c.missing, 2);
        assert_eq!(c.common, 98);
        assert!(c.metrics.u > 0.0);
    }

    #[test]
    fn report_mean_matches_components() {
        let a = cbr_trial(100, 1000, |_| 0);
        let b = cbr_trial(100, 1000, |i| (i % 2) as i64 * 100);
        let c = cbr_trial(100, 1000, |i| (i % 3) as i64 * 100);
        let rb = analyze("B", &a, &b);
        let rc = analyze("C", &a, &c);
        let expect_i = (rb.metrics.i + rc.metrics.i) / 2.0;
        let report = RunReport::new("test-env", vec![rb, rc]);
        assert!((report.mean.i - expect_i).abs() < 1e-15);
        assert!(report.kappa_stddev >= 0.0);
        assert_eq!(report.runs.len(), 2);
        assert_eq!(report.merged_iat_hist().total(), 200);
        assert_eq!(report.merged_latency_hist().total(), 200);
    }

    #[test]
    fn report_serializes() {
        let a = cbr_trial(10, 1000, |_| 0);
        let r = RunReport::new("env", vec![analyze("B", &a, &a.clone())]);
        let json = serde_json::to_string(&r).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.environment, "env");
        assert_eq!(back.runs[0].metrics.kappa, 1.0);
    }

    #[test]
    fn parallel_analysis_matches_serial() {
        let a = cbr_trial(500, 1000, |_| 0);
        let runs: Vec<Trial> = (1..4u64)
            .map(|k| cbr_trial(500, 1000, move |i| ((i % (k + 1)) * 37) as i64))
            .collect();
        let par = analyze_runs_parallel(&a, &runs);
        assert_eq!(par.len(), 3);
        assert_eq!(par[0].label, "B");
        assert_eq!(par[2].label, "D");
        for (p, t) in par.iter().zip(&runs) {
            let serial = analyze(p.label.clone(), &a, t);
            assert_eq!(p.metrics, serial.metrics);
            assert_eq!(p.moved, serial.moved);
        }
    }

    #[test]
    fn custom_kappa_config_flows_through() {
        let a = cbr_trial(100, 1000, |_| 0);
        let mut b = Trial::new();
        for i in 1..100u64 {
            b.push_tagged(0, 0, i, i * 1000); // one drop
        }
        let linear = analyze_with("B", &a, &b, &KappaConfig::paper());
        let strict = analyze_with("B", &a, &b, &KappaConfig::drop_sensitive());
        assert!(strict.metrics.kappa < linear.metrics.kappa);
    }
}
