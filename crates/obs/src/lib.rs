//! # choir-obs
//!
//! Dependency-free, hermetic observability for the Choir workspace:
//!
//! - **Span timers** — monotonic ([`std::time::Instant`]) wall-clock
//!   spans with parent/child nesting via a per-thread span stack. A
//!   span's full path (`"pipeline/capture/engine"`) is the join of every
//!   enclosing span on the same thread, so the aggregate table
//!   reconstructs the call tree.
//! - **Named counters and gauges** — `u64` atomics in a global but
//!   resettable registry. Counters accumulate (`add`), gauges record a
//!   last-write or high-water value (`set` / `max`).
//! - **Event ring** — a fixed-capacity, lock-free ring of hot-path
//!   breadcrumbs (burst delivered, retry fired, worker stole a pair,
//!   wheel overflow-spill). Writers claim a slot with one `fetch_add`
//!   and never block; when the ring wraps, the oldest breadcrumbs are
//!   overwritten (the drop count is reported in the snapshot).
//!
//! Everything is gated twice:
//!
//! - at **compile time** by the `obs` cargo feature (on by default;
//!   without it every entry point is an inert stub), and
//! - at **runtime** by [`ObsConfig`] / [`set_enabled`]. Disabled, each
//!   call is one relaxed atomic load and a predictable branch.
//!
//! Instrumentation must never perturb what it observes: nothing here
//! draws from the deterministic RNGs, touches simulated time, or
//! allocates on a caller's hot path while disabled. Wall-clock reads
//! (`Instant`) are invisible to the simulation, exactly like the stage
//! timings the κ engine already records.
//!
//! The aggregate state exports as a serializable [`ObsSnapshot`] that
//! `RunReport` embeds (`#[serde(default)]`, so reports written before
//! the obs layer existed still load).

use serde::{Deserialize, Serialize};

/// Runtime observability configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Master switch. Off by default: instrumentation costs one relaxed
    /// load per call site.
    pub enabled: bool,
    /// Event-ring capacity (breadcrumb slots). Fixed at first use; a
    /// later [`configure`] with a different capacity keeps the original
    /// ring (the ring is lock-free, so it is never reallocated while
    /// writers may hold slots).
    pub ring_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            enabled: false,
            ring_capacity: 1024,
        }
    }
}

impl ObsConfig {
    /// Enabled with the default ring capacity.
    pub fn enabled() -> Self {
        ObsConfig {
            enabled: true,
            ..ObsConfig::default()
        }
    }
}

/// One counter or gauge in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnap {
    /// Registry name, e.g. `"sim.events_processed"`.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// Aggregate statistics of one span path.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanSnap {
    /// Full nesting path, `'/'`-separated (`"matrix/pairs"`).
    pub path: String,
    /// Completed spans on this path.
    pub count: u64,
    /// Total wall-clock across them, ns.
    pub total_ns: u64,
    /// Shortest single span, ns.
    pub min_ns: u64,
    /// Longest single span, ns.
    pub max_ns: u64,
}

/// One breadcrumb from the event ring.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventSnap {
    /// Global emission index (monotone across the run).
    pub seq: u64,
    /// Event kind, e.g. `"replay.retry"`.
    pub kind: String,
    /// First payload word (site-defined).
    pub a: u64,
    /// Second payload word (site-defined).
    pub b: u64,
}

/// Serializable export of the whole registry: counters, span aggregates
/// and the surviving tail of the event ring.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ObsSnapshot {
    /// Whether observability was enabled when the snapshot was taken.
    pub enabled: bool,
    /// Counters and gauges, sorted by name.
    pub counters: Vec<CounterSnap>,
    /// Span aggregates, sorted by path.
    pub spans: Vec<SpanSnap>,
    /// Ring contents, oldest surviving breadcrumb first.
    pub events: Vec<EventSnap>,
    /// Breadcrumbs emitted over the run (≥ `events.len()`).
    pub events_emitted: u64,
    /// Breadcrumbs overwritten by ring wrap-around.
    pub events_dropped: u64,
}

impl ObsSnapshot {
    /// Value of a counter/gauge by name, if recorded.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// Aggregate for a span path, if recorded.
    pub fn span(&self, path: &str) -> Option<&SpanSnap> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.spans.is_empty() && self.events.is_empty()
    }
}

#[cfg(feature = "obs")]
mod imp {
    use super::*;
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    static ENABLED: AtomicBool = AtomicBool::new(false);
    /// Desired ring capacity; read once when the ring is first built.
    static RING_CAPACITY: AtomicUsize = AtomicUsize::new(1024);

    struct SpanStat {
        count: u64,
        total_ns: u64,
        min_ns: u64,
        max_ns: u64,
    }

    #[derive(Default)]
    struct Registry {
        counters: BTreeMap<String, u64>,
        spans: BTreeMap<String, SpanStat>,
    }

    fn registry() -> &'static Mutex<Registry> {
        static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
        REG.get_or_init(|| Mutex::new(Registry::default()))
    }

    // --- event ring ----------------------------------------------------

    /// One ring slot. `seq` holds `index + 1` of the last completed write
    /// (0 = never written); readers re-check it to discard slots a
    /// wrapping writer was mid-update on. Payload words are plain relaxed
    /// atomics — a torn read is caught by the `seq` re-check.
    struct Slot {
        seq: AtomicU64,
        kind_ptr: AtomicU64,
        kind_len: AtomicU64,
        a: AtomicU64,
        b: AtomicU64,
    }

    struct Ring {
        slots: Box<[Slot]>,
        /// Total breadcrumbs claimed; slot index = head % capacity.
        head: AtomicU64,
    }

    impl Ring {
        fn new(capacity: usize) -> Self {
            let capacity = capacity.max(1);
            let mut slots = Vec::with_capacity(capacity);
            for _ in 0..capacity {
                slots.push(Slot {
                    seq: AtomicU64::new(0),
                    kind_ptr: AtomicU64::new(0),
                    kind_len: AtomicU64::new(0),
                    a: AtomicU64::new(0),
                    b: AtomicU64::new(0),
                });
            }
            Ring {
                slots: slots.into_boxed_slice(),
                head: AtomicU64::new(0),
            }
        }

        fn push(&self, kind: &'static str, a: u64, b: u64) {
            let idx = self.head.fetch_add(1, Ordering::Relaxed);
            let slot = &self.slots[(idx % self.slots.len() as u64) as usize];
            // 0 marks the slot in-flight; readers seeing anything but
            // `idx + 1` (before AND after reading the payload) discard it.
            slot.seq.store(0, Ordering::Release);
            slot.kind_ptr.store(kind.as_ptr() as u64, Ordering::Relaxed);
            slot.kind_len.store(kind.len() as u64, Ordering::Relaxed);
            slot.a.store(a, Ordering::Relaxed);
            slot.b.store(b, Ordering::Relaxed);
            slot.seq.store(idx + 1, Ordering::Release);
        }

        fn drain_into(&self, out: &mut Vec<EventSnap>) -> (u64, u64) {
            let emitted = self.head.load(Ordering::Acquire);
            let cap = self.slots.len() as u64;
            let kept = emitted.min(cap);
            let first = emitted - kept;
            for idx in first..emitted {
                let slot = &self.slots[(idx % cap) as usize];
                let seq = slot.seq.load(Ordering::Acquire);
                if seq != idx + 1 {
                    // Overwritten or mid-write; skip the breadcrumb.
                    continue;
                }
                let ptr = slot.kind_ptr.load(Ordering::Relaxed);
                let len = slot.kind_len.load(Ordering::Relaxed);
                let a = slot.a.load(Ordering::Relaxed);
                let b = slot.b.load(Ordering::Relaxed);
                if slot.seq.load(Ordering::Acquire) != idx + 1 {
                    continue;
                }
                // SAFETY: `ptr`/`len` were produced from a `&'static str`
                // in `push` and revalidated by the seq re-check; 'static
                // string data is never deallocated.
                let kind = unsafe {
                    std::str::from_utf8_unchecked(std::slice::from_raw_parts(
                        ptr as *const u8,
                        len as usize,
                    ))
                };
                out.push(EventSnap {
                    seq: idx,
                    kind: kind.to_string(),
                    a,
                    b,
                });
            }
            (emitted, emitted - kept)
        }

        fn clear(&self) {
            // Readers tolerate any seq mismatch, so ordering here is
            // cosmetic; reset() is only called between runs.
            self.head.store(0, Ordering::Release);
            for s in self.slots.iter() {
                s.seq.store(0, Ordering::Release);
            }
        }
    }

    fn ring() -> &'static Ring {
        static RING: OnceLock<Ring> = OnceLock::new();
        RING.get_or_init(|| Ring::new(RING_CAPACITY.load(Ordering::Relaxed)))
    }

    // --- public API (compiled-in variant) -------------------------------

    /// True when observability is runtime-enabled.
    #[inline]
    pub fn is_enabled() -> bool {
        ENABLED.load(Ordering::Relaxed)
    }

    /// Apply a runtime configuration (see [`ObsConfig::ring_capacity`]
    /// for the first-use caveat).
    pub fn configure(cfg: &ObsConfig) {
        RING_CAPACITY.store(cfg.ring_capacity.max(1), Ordering::Relaxed);
        ENABLED.store(cfg.enabled, Ordering::Relaxed);
    }

    /// Flip the master switch without touching recorded state.
    pub fn set_enabled(on: bool) {
        ENABLED.store(on, Ordering::Relaxed);
    }

    /// Zero every counter, drop every span aggregate, clear the ring.
    /// The enabled flag is left as-is.
    pub fn reset() {
        let mut reg = registry().lock().expect("obs registry");
        reg.counters.clear();
        reg.spans.clear();
        drop(reg);
        ring().clear();
    }

    /// Update a counter/gauge slot, allocating its name only on first
    /// touch.
    fn update_counter(name: &str, f: impl FnOnce(&mut u64)) {
        let mut reg = registry().lock().expect("obs registry");
        if let Some(v) = reg.counters.get_mut(name) {
            f(v);
        } else {
            let mut v = 0;
            f(&mut v);
            reg.counters.insert(name.to_string(), v);
        }
    }

    /// Add `n` to the named counter (registered on first touch).
    pub fn counter_add(name: &str, n: u64) {
        if !is_enabled() {
            return;
        }
        update_counter(name, |v| *v += n);
    }

    /// Increment the named counter by one.
    #[inline]
    pub fn counter_inc(name: &str) {
        counter_add(name, 1);
    }

    /// Record a last-write gauge value.
    pub fn gauge_set(name: &str, v: u64) {
        if !is_enabled() {
            return;
        }
        update_counter(name, |slot| *slot = v);
    }

    /// Record a high-water gauge value.
    pub fn gauge_max(name: &str, v: u64) {
        if !is_enabled() {
            return;
        }
        update_counter(name, |slot| *slot = (*slot).max(v));
    }

    /// Emit a breadcrumb into the event ring.
    #[inline]
    pub fn event(kind: &'static str, a: u64, b: u64) {
        if !is_enabled() {
            return;
        }
        ring().push(kind, a, b);
    }

    thread_local! {
        static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    }

    /// RAII span: records wall-clock from construction to drop under the
    /// current thread's span path. Inert when obs is disabled.
    pub struct SpanGuard {
        start: Option<Instant>,
        name: &'static str,
    }

    /// Open a span named `name`, nested under any span already open on
    /// this thread.
    pub fn span(name: &'static str) -> SpanGuard {
        if !is_enabled() {
            return SpanGuard { start: None, name };
        }
        SPAN_STACK.with(|s| s.borrow_mut().push(name));
        SpanGuard {
            start: Some(Instant::now()),
            name,
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let Some(start) = self.start else {
                return;
            };
            let dt = start.elapsed().as_nanos() as u64;
            let path = SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                // Pop back to this span's frame even if an inner guard
                // leaked (e.g. mem::forget): truncate at the deepest
                // occurrence of our name.
                if let Some(pos) = stack.iter().rposition(|n| *n == self.name) {
                    let path = stack[..=pos].join("/");
                    stack.truncate(pos);
                    path
                } else {
                    self.name.to_string()
                }
            });
            let mut reg = registry().lock().expect("obs registry");
            match reg.spans.get_mut(&path) {
                Some(st) => {
                    st.count += 1;
                    st.total_ns += dt;
                    st.min_ns = st.min_ns.min(dt);
                    st.max_ns = st.max_ns.max(dt);
                }
                None => {
                    reg.spans.insert(
                        path,
                        SpanStat {
                            count: 1,
                            total_ns: dt,
                            min_ns: dt,
                            max_ns: dt,
                        },
                    );
                }
            }
        }
    }

    /// Export the registry as a serializable snapshot. Counters and spans
    /// come out name-sorted (BTreeMap order), so snapshots of identical
    /// runs are deterministic.
    pub fn snapshot() -> ObsSnapshot {
        let reg = registry().lock().expect("obs registry");
        let counters = reg
            .counters
            .iter()
            .map(|(name, &value)| CounterSnap {
                name: name.clone(),
                value,
            })
            .collect();
        let spans = reg
            .spans
            .iter()
            .map(|(path, st)| SpanSnap {
                path: path.clone(),
                count: st.count,
                total_ns: st.total_ns,
                min_ns: st.min_ns,
                max_ns: st.max_ns,
            })
            .collect();
        drop(reg);
        let mut events = Vec::new();
        let (emitted, dropped) = ring().drain_into(&mut events);
        ObsSnapshot {
            enabled: is_enabled(),
            counters,
            spans,
            events,
            events_emitted: emitted,
            events_dropped: dropped,
        }
    }
}

#[cfg(not(feature = "obs"))]
mod imp {
    //! Feature-off stubs: every entry point compiles to nothing.
    use super::*;

    /// Always false with the `obs` feature off.
    #[inline(always)]
    pub fn is_enabled() -> bool {
        false
    }
    /// No-op with the `obs` feature off.
    #[inline(always)]
    pub fn configure(_cfg: &ObsConfig) {}
    /// No-op with the `obs` feature off.
    #[inline(always)]
    pub fn set_enabled(_on: bool) {}
    /// No-op with the `obs` feature off.
    #[inline(always)]
    pub fn reset() {}
    /// No-op with the `obs` feature off.
    #[inline(always)]
    pub fn counter_add(_name: &str, _n: u64) {}
    /// No-op with the `obs` feature off.
    #[inline(always)]
    pub fn counter_inc(_name: &str) {}
    /// No-op with the `obs` feature off.
    #[inline(always)]
    pub fn gauge_set(_name: &str, _v: u64) {}
    /// No-op with the `obs` feature off.
    #[inline(always)]
    pub fn gauge_max(_name: &str, _v: u64) {}
    /// No-op with the `obs` feature off.
    #[inline(always)]
    pub fn event(_kind: &'static str, _a: u64, _b: u64) {}

    /// Inert guard with the `obs` feature off.
    pub struct SpanGuard;
    /// Inert span with the `obs` feature off.
    #[inline(always)]
    pub fn span(_name: &'static str) -> SpanGuard {
        SpanGuard
    }
    /// Empty snapshot with the `obs` feature off.
    pub fn snapshot() -> ObsSnapshot {
        ObsSnapshot::default()
    }
}

pub use imp::{
    configure, counter_add, counter_inc, event, gauge_max, gauge_set, is_enabled, reset, set_enabled,
    snapshot, span, SpanGuard,
};

#[cfg(all(test, feature = "obs"))]
mod tests {
    use super::*;

    /// The registry is process-global, so tests share one lock to avoid
    /// interleaving resets.
    fn serialized<T>(f: impl FnOnce() -> T) -> T {
        use std::sync::{Mutex, OnceLock};
        static GUARD: OnceLock<Mutex<()>> = OnceLock::new();
        let _g = GUARD.get_or_init(|| Mutex::new(())).lock().expect("test guard");
        reset();
        set_enabled(true);
        let out = f();
        set_enabled(false);
        reset();
        out
    }

    #[test]
    fn disabled_records_nothing() {
        serialized(|| {
            set_enabled(false);
            counter_add("x", 3);
            event("k", 1, 2);
            {
                let _s = span("root");
            }
            let snap = snapshot();
            assert!(snap.is_empty(), "{snap:?}");
            assert!(!snap.enabled);
        });
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        serialized(|| {
            counter_add("a.count", 2);
            counter_inc("a.count");
            gauge_set("g.last", 7);
            gauge_set("g.last", 5);
            gauge_max("g.peak", 3);
            gauge_max("g.peak", 9);
            gauge_max("g.peak", 4);
            let snap = snapshot();
            assert_eq!(snap.counter("a.count"), Some(3));
            assert_eq!(snap.counter("g.last"), Some(5));
            assert_eq!(snap.counter("g.peak"), Some(9));
            // Name-sorted.
            let names: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
            let mut sorted = names.clone();
            sorted.sort();
            assert_eq!(names, sorted);
        });
    }

    #[test]
    fn spans_nest_into_paths() {
        serialized(|| {
            {
                let _outer = span("outer");
                {
                    let _inner = span("inner");
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                {
                    let _inner = span("inner");
                }
            }
            {
                let _solo = span("inner");
            }
            let snap = snapshot();
            let nested = snap.span("outer/inner").expect("nested path");
            assert_eq!(nested.count, 2);
            assert!(nested.total_ns >= 1_000_000, "{nested:?}");
            assert!(nested.min_ns <= nested.max_ns);
            assert_eq!(snap.span("outer").expect("outer").count, 1);
            assert_eq!(snap.span("inner").expect("root inner").count, 1);
        });
    }

    #[test]
    fn event_ring_keeps_order_and_reports_drops() {
        serialized(|| {
            for i in 0..10u64 {
                event("tick", i, i * 2);
            }
            let snap = snapshot();
            assert_eq!(snap.events_emitted, 10);
            assert_eq!(snap.events_dropped, 0);
            assert_eq!(snap.events.len(), 10);
            for (i, e) in snap.events.iter().enumerate() {
                assert_eq!(e.seq, i as u64);
                assert_eq!(e.kind, "tick");
                assert_eq!(e.a, i as u64);
                assert_eq!(e.b, i as u64 * 2);
            }
        });
    }

    #[test]
    fn event_ring_wraps_and_counts_dropped() {
        serialized(|| {
            // Default capacity is 1024; overrun it.
            for i in 0..1500u64 {
                event("w", i, 0);
            }
            let snap = snapshot();
            assert_eq!(snap.events_emitted, 1500);
            assert_eq!(snap.events_dropped, 1500 - 1024);
            assert_eq!(snap.events.len(), 1024);
            assert_eq!(snap.events.first().expect("tail").a, 1500 - 1024);
            assert_eq!(snap.events.last().expect("tail").a, 1499);
        });
    }

    #[test]
    fn reset_clears_everything() {
        serialized(|| {
            counter_add("c", 1);
            event("e", 0, 0);
            {
                let _s = span("s");
            }
            reset();
            let snap = snapshot();
            assert!(snap.is_empty(), "{snap:?}");
            assert_eq!(snap.events_emitted, 0);
        });
    }

    #[test]
    fn concurrent_writers_are_safe() {
        serialized(|| {
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    s.spawn(move || {
                        for i in 0..200u64 {
                            counter_add("mt.count", 1);
                            event("mt", t, i);
                        }
                    });
                }
            });
            let snap = snapshot();
            assert_eq!(snap.counter("mt.count"), Some(800));
            assert_eq!(snap.events_emitted, 800);
            // Ring holds the newest ≤1024, every survivor well-formed.
            assert!(snap.events.len() <= 800);
            assert!(snap.events.iter().all(|e| e.kind == "mt" && e.a < 4));
        });
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        serialized(|| {
            counter_add("json.c", 42);
            {
                let _s = span("json_span");
            }
            event("json.e", 7, 8);
            let snap = snapshot();
            let json = serde_json::to_string(&snap).expect("serialize");
            let back: ObsSnapshot = serde_json::from_str(&json).expect("deserialize");
            assert_eq!(back, snap);
        });
    }
}
