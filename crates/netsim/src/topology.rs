//! Topology construction helpers.
//!
//! Both of the paper's testbeds are "everything plugged into one switch"
//! topologies (§6: "All elements were connected through a AS9516-32D
//! Tofino2 switch running a simple ingress to egress port forwarding
//! program"). [`TopologyBuilder`] wraps [`Sim`] with switch-port
//! bookkeeping so an experiment can declare unidirectional paths
//! (`a.port -> switch -> b.port`) without hand-allocating switch ports.

use std::fmt;

use choir_dpdk::PortId;

use crate::engine::{NodeId, Sim};
use crate::switchdev::{Switch, SwitchProfile};

/// Topology construction failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyError {
    /// The switch has no free ports for the requested path.
    OutOfPorts {
        /// Total ports on the switch (all in use).
        capacity: usize,
        /// Ports the rejected request needed.
        requested: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::OutOfPorts {
                capacity,
                requested,
            } => write!(
                f,
                "switch out of ports: {requested} requested, {capacity} total all in use"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

/// Allocates switch ports and wires unidirectional paths.
pub struct TopologyBuilder {
    sw: usize,
    next_port: usize,
    capacity: usize,
}

impl TopologyBuilder {
    /// Create a switch with `ports` ports in `sim`.
    pub fn with_switch(sim: &mut Sim, profile: SwitchProfile, ports: usize, name: &str) -> Self {
        let sw = sim.add_switch(Switch::new(ports, profile), name);
        TopologyBuilder {
            sw,
            next_port: 0,
            capacity: ports,
        }
    }

    /// The switch index in the simulation.
    pub fn switch(&self) -> usize {
        self.sw
    }

    /// Wire a unidirectional path `(a, ap) -> switch -> (b, bp)` using two
    /// fresh switch ports, with `prop_ps` propagation per hop.
    ///
    /// Returns the (ingress, egress) switch ports used, or
    /// [`TopologyError::OutOfPorts`] when the switch cannot supply both —
    /// in which case nothing is wired and no port is consumed.
    pub fn path(
        &mut self,
        sim: &mut Sim,
        a: NodeId,
        ap: PortId,
        b: NodeId,
        bp: PortId,
        prop_ps: u64,
    ) -> Result<(usize, usize), TopologyError> {
        if self.next_port + 2 > self.capacity {
            return Err(TopologyError::OutOfPorts {
                capacity: self.capacity,
                requested: 2,
            });
        }
        let ingress = self.alloc().expect("checked capacity");
        let egress = self.alloc().expect("checked capacity");
        sim.connect_node_switch(a, ap, self.sw, ingress, prop_ps);
        sim.connect_node_switch(b, bp, self.sw, egress, prop_ps);
        sim.switch_map(self.sw, ingress, egress);
        Ok((ingress, egress))
    }

    /// Claim one fresh switch port, or [`TopologyError::OutOfPorts`] when
    /// none remain.
    pub fn alloc(&mut self) -> Result<usize, TopologyError> {
        if self.next_port >= self.capacity {
            return Err(TopologyError::OutOfPorts {
                capacity: self.capacity,
                requested: 1,
            });
        }
        let p = self.next_port;
        self.next_port += 1;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::NodeClock;
    use crate::engine::SimConfig;
    use crate::nic::{NicRxModel, NicTxModel};
    use crate::rng::Jitter;
    use choir_dpdk::{App, Dataplane};

    struct Idle;
    impl App for Idle {
        fn on_wake(&mut self, _dp: &mut dyn Dataplane) {}
    }

    #[test]
    fn paths_allocate_distinct_ports() {
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_node("a", Idle, NodeClock::ideal(1_000_000_000), Jitter::None);
        let b = sim.add_node("b", Idle, NodeClock::ideal(1_000_000_000), Jitter::None);
        let ap = sim.add_port(a, NicTxModel::ideal(100_000_000_000), NicRxModel::ideal());
        let bp = sim.add_port(b, NicTxModel::ideal(100_000_000_000), NicRxModel::ideal());
        let ap2 = sim.add_port(a, NicTxModel::ideal(100_000_000_000), NicRxModel::ideal());
        let bp2 = sim.add_port(b, NicTxModel::ideal(100_000_000_000), NicRxModel::ideal());

        let mut topo =
            TopologyBuilder::with_switch(&mut sim, SwitchProfile::tofino2(100_000_000_000), 8, "sw");
        let (i1, e1) = topo.path(&mut sim, a, ap, b, bp, 5_000).expect("ports free");
        let (i2, e2) = topo.path(&mut sim, b, bp2, a, ap2, 5_000).expect("ports free");
        assert_eq!((i1, e1), (0, 1));
        assert_eq!((i2, e2), (2, 3));
    }

    #[test]
    fn exhausting_ports_is_a_typed_error() {
        let mut sim = Sim::new(SimConfig::default());
        let a = sim.add_node("a", Idle, NodeClock::ideal(1_000_000_000), Jitter::None);
        let ap = sim.add_port(a, NicTxModel::ideal(1), NicRxModel::ideal());
        let mut topo =
            TopologyBuilder::with_switch(&mut sim, SwitchProfile::tofino2(1), 1, "sw");
        let err = topo.path(&mut sim, a, ap, a, ap, 0).expect_err("1 < 2 ports");
        assert_eq!(
            err,
            TopologyError::OutOfPorts {
                capacity: 1,
                requested: 2
            }
        );
        // A partial request must not consume the remaining port.
        assert_eq!(topo.alloc(), Ok(0));
        assert_eq!(
            topo.alloc(),
            Err(TopologyError::OutOfPorts {
                capacity: 1,
                requested: 1
            })
        );
        let msg = err.to_string();
        assert!(msg.contains("out of ports"), "display: {msg}");
    }
}
