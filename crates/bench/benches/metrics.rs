//! Criterion benches of the metric suite. The paper's artifact analyzes
//! million-packet captures ("no more than 5 minutes each, but the time
//! scales with the length of the packet captures and with any
//! reordering", Appendix B) — these benches show the Rust implementation
//! handles that scale in milliseconds.

// Kernel-isolation benches (`ordering`, `matching_indexed`) deliberately
// time the deprecated free functions: they measure one stage with its
// inputs prebuilt, which the `PairAnalyzer` facade does not expose.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use choir_core::metrics::allpairs::{all_pairs_serial, all_pairs_sharded, TrialIndex};
use choir_core::metrics::matching::Matching;
use choir_core::metrics::ordering::ordering;
use choir_core::metrics::report::analyze;
use choir_core::metrics::{compare, PairAnalyzer, PairScratch, Trial};

fn cbr_trial(n: u64, jitter_period: u64) -> Trial {
    let mut t = Trial::with_capacity(n as usize);
    for i in 0..n {
        let j = if jitter_period > 0 {
            (i % jitter_period) * 1_000
        } else {
            0
        };
        t.push_tagged(0, 0, i, i * 284_800 + j);
    }
    t
}

/// A trial with block reordering (the dual-replayer shape).
fn block_shuffled(n: u64, block: u64) -> Trial {
    let mut t = Trial::with_capacity(n as usize);
    for i in 0..n {
        // Swap adjacent blocks pairwise.
        let b = i / block;
        let seq = if b.is_multiple_of(2) {
            (i + block).min(n - 1)
        } else {
            i - block
        };
        t.push_tagged(0, 0, seq, i * 284_800);
    }
    t
}

fn bench_compare(c: &mut Criterion) {
    let mut g = c.benchmark_group("metric_compare");
    for &n in &[10_000u64, 100_000, 1_000_000] {
        let a = cbr_trial(n, 0);
        let b = cbr_trial(n, 7);
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("in_order", n), &n, |bench, _| {
            bench.iter(|| compare(&a, &b).kappa);
        });
    }
    g.finish();
}

fn bench_ordering_reordered(c: &mut Criterion) {
    let mut g = c.benchmark_group("metric_ordering");
    g.sample_size(20);
    for &n in &[100_000u64, 1_000_000] {
        let a = cbr_trial(n, 0);
        let b = block_shuffled(n, 64);
        let m = Matching::build(&a, &b);
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("block_shuffled_lis", n), &n, |bench, _| {
            bench.iter(|| ordering(&m).o);
        });
    }
    g.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("metric_matching");
    let n = 1_000_000u64;
    let a = cbr_trial(n, 0);
    let b = cbr_trial(n, 3);
    g.throughput(Throughput::Elements(n));
    g.bench_function("build_1m", |bench| {
        bench.iter(|| Matching::build(&a, &b).common());
    });
    g.finish();
}

fn bench_full_analysis(c: &mut Criterion) {
    // The paper's per-run analysis bundle: metrics + both histograms +
    // edit-script stats, at the paper's full trial size.
    let mut g = c.benchmark_group("metric_full_analysis");
    g.sample_size(10);
    let n = 1_053_000u64; // one 0.3 s 40 Gbps capture
    let a = cbr_trial(n, 0);
    let b = cbr_trial(n, 11);
    g.throughput(Throughput::Elements(n));
    g.bench_function("paper_scale_run", |bench| {
        bench.iter(|| analyze("B", &a, &b).metrics.kappa);
    });
    g.finish();
}

fn bench_all_pairs(c: &mut Criterion) {
    // The sharded all-pairs engine vs the serial reference over an
    // 8-trial sweep (28 pairs). The engine must be bit-identical, so
    // the interesting axis here is purely wall-clock.
    let mut g = c.benchmark_group("metric_all_pairs");
    g.sample_size(10);
    let n = 50_000u64;
    let trials: Vec<Trial> = (0..8).map(|k| cbr_trial(n, 3 + k)).collect();
    g.throughput(Throughput::Elements(n * 28));
    g.bench_function("serial_8_trials", |bench| {
        bench.iter(|| all_pairs_serial(&trials).summary());
    });
    for &shards in &[1usize, 2, 8] {
        g.bench_with_input(
            BenchmarkId::new("sharded_8_trials", shards),
            &shards,
            |bench, &shards| {
                bench.iter(|| all_pairs_sharded(&trials, shards).unwrap().summary());
            },
        );
    }
    g.finish();
}

fn bench_trial_index(c: &mut Criterion) {
    // Cost of building the per-trial precomputation cache, and the
    // matched lookup path it enables.
    let mut g = c.benchmark_group("metric_trial_index");
    let n = 1_000_000u64;
    let a = cbr_trial(n, 0);
    let b = cbr_trial(n, 3);
    g.throughput(Throughput::Elements(n));
    g.bench_function("build_1m", |bench| {
        bench.iter(|| TrialIndex::build(&a).unwrap().len());
    });
    let ia = TrialIndex::build(&a).unwrap();
    let ib = TrialIndex::build(&b).unwrap();
    g.bench_function("matching_indexed_1m", |bench| {
        bench.iter(|| choir_core::metrics::allpairs::matching_indexed(&ia, &ib).common());
    });
    g.finish();
}

fn bench_arena_kernels(c: &mut Criterion) {
    // Arena path vs the legacy per-pair path over one full analysis:
    // same inputs, bit-identical outputs (enforced by the test suite),
    // so the delta here is purely the flat-arena kernel rewrite.
    let mut g = c.benchmark_group("metric_kernel_arena");
    g.sample_size(20);
    let n = 200_000u64;
    let a = cbr_trial(n, 0);
    let b = block_shuffled(n, 64);
    g.throughput(Throughput::Elements(n));
    g.bench_function("legacy_pair", |bench| {
        bench.iter(|| PairAnalyzer::new(&a, &b).analyze().metrics.kappa);
    });
    let ia = TrialIndex::build(&a).unwrap();
    let ib = TrialIndex::build(&b).unwrap();
    g.bench_function("arena_pair", |bench| {
        let mut scratch = PairScratch::new();
        bench.iter(|| {
            PairAnalyzer::from_indexes(&ia, &ib)
                .analyze_with_scratch(&mut scratch)
                .metrics
                .kappa
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_compare,
    bench_ordering_reordered,
    bench_matching,
    bench_full_analysis,
    bench_all_pairs,
    bench_trial_index,
    bench_arena_kernels
);
criterion_main!(benches);
