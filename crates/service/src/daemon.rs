//! The κ-as-a-service daemon: a long-running, multi-tenant streaming
//! consistency monitor.
//!
//! Each tenant owns a set of named capture streams. The first stream a
//! tenant opens is its **baseline**; every later stream gets its own
//! [`IncrementalComparison`] engine against that baseline, run in
//! **unbounded (full-lookahead) mode** — the engine whose finalize is
//! bit-identical to the batch pipeline *for any interleaving of the two
//! sides*. That interleaving-independence is what makes the daemon's
//! numbers trustworthy: observations arrive over sockets in whatever
//! order the network delivers them, and the served κ is still exactly
//! the κ a post-hoc batch analysis of the same records produces,
//! bit for bit. The `repro service` benchmark gates on this.
//!
//! # Durability
//!
//! The daemon is event-sourced, reusing the crash-tolerance design of
//! the supervised streaming runner:
//!
//! * every mutating request is appended to `journal.jsonl` (flushed)
//!   **before** it is applied;
//! * on a checkpoint (explicit, cadence, or graceful shutdown) the
//!   trial store is flushed to its spill files, the full daemon state —
//!   tenants, stream meta, one [`StreamCheckpoint`] per live engine,
//!   final summaries — is written to `state.json` (write-temp +
//!   rename), and the journal is truncated;
//! * recovery loads `state.json`, adopts the spilled trials at their
//!   checkpointed lengths, resumes every live engine through
//!   [`IncrementalComparison::resume_checked`] (which refuses a
//!   checkpoint from the wrong engine or config), and replays the
//!   journal through the *same* apply path the wire handlers use.
//!
//! A hard kill between checkpoints therefore loses nothing: replayed
//! ingests land in the same engines in the same per-stream order, and
//! full-lookahead mode makes any cross-stream reordering irrelevant.
//!
//! # Memory
//!
//! Trial bytes live in a per-tenant [`TrialStore`] with an LRU spill
//! budget; engines hold only unmatched residents. The `Stats` response
//! exposes resident bytes so operators (and the bench's RSS gate) can
//! watch the budget hold.

use std::collections::BTreeMap;
use std::fs;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

use choir_core::metrics::{
    all_pairs_sharded_with, IncrementalComparison, KappaConfig, KappaSnapshot, Observation, Side,
    StreamCheckpoint, StreamConfig, TrialComparison,
};
use choir_core::obs;
use serde::{Deserialize, Serialize};

use crate::store::{StoreError, TrialStore};
use crate::wire::{
    recv_request, send_response, Request, Response, WireCell, WireFinal, WireKappa, WireObs,
    WireTrailPoint,
};

/// Daemon construction parameters.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Root for all durable state: `state.json`, `journal.jsonl`, and
    /// the per-tenant spill directories under `spill/`.
    pub data_dir: PathBuf,
    /// Store budget for tenants created with `budget_bytes == 0`.
    pub default_budget_bytes: u64,
    /// Take a durable checkpoint every this many accepted records
    /// across all tenants (0 = only explicit `Checkpoint` requests and
    /// graceful shutdown).
    pub checkpoint_every_records: u64,
    /// Engine snapshot cadence (observations between trail points).
    /// Part of the measurement config — changing it between runs makes
    /// old engine checkpoints unresumable, by design.
    pub snapshot_every: u64,
}

impl DaemonConfig {
    /// Defaults: 64 MiB tenant budget, checkpoint every 8192 records,
    /// trail point every 512 observations.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        DaemonConfig {
            data_dir: data_dir.into(),
            default_budget_bytes: 64 << 20,
            checkpoint_every_records: 8192,
            snapshot_every: 512,
        }
    }

    fn stream_config(&self) -> StreamConfig {
        StreamConfig {
            lookahead: None, // unbounded: batch-identical for any interleaving
            snapshot_every: self.snapshot_every,
            kappa: KappaConfig::paper(),
        }
    }
}

/// Engine identity for a tenant/stream pair: FNV-1a over the key,
/// finished with a SplitMix64 step, forced nonzero (0 means "untagged"
/// to `resume_checked`).
fn engine_id_for(tenant: &str, stream: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in tenant.bytes().chain([b'/']).chain(stream.bytes()) {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    let mut z = h.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) | 1
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.len() <= 64
        && s.bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// A finished comparison stream's durable result.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct FinishedStream {
    comparison: TrialComparison,
    snapshots: Vec<KappaSnapshot>,
}

struct StreamState {
    ingested: u64,
    finished: bool,
    /// `None` for the tenant baseline; comparison streams carry an
    /// engine while live and a summary once finished.
    engine: Option<IncrementalComparison>,
    done: Option<FinishedStream>,
}

impl StreamState {
    fn is_baseline(&self) -> bool {
        self.engine.is_none() && self.done.is_none()
    }
}

struct Tenant {
    budget_bytes: u64,
    store: TrialStore,
    baseline: Option<String>,
    streams: BTreeMap<String, StreamState>,
    /// Cached all-pairs matrix; invalidated by any mutation.
    matrix: Option<(Vec<String>, Vec<WireCell>)>,
}

/// One journaled mutating operation. Appended (and flushed) before the
/// operation is applied; replayed through the same apply path on
/// recovery. Every op is idempotent against a state that already
/// includes it, so a crash between `state.json` and the journal
/// truncation replays harmlessly.
#[derive(Debug, Clone, Serialize, Deserialize)]
enum JournalOp {
    CreateTenant { tenant: String, budget_bytes: u64 },
    DropTenant { tenant: String },
    OpenStream { tenant: String, stream: String },
    Ingest {
        tenant: String,
        stream: String,
        seq: u64,
        records: Vec<WireObs>,
    },
    Finish { tenant: String, stream: String },
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct StreamCk {
    name: String,
    ingested: u64,
    finished: bool,
    is_baseline: bool,
    #[serde(default)]
    engine: Option<StreamCheckpoint>,
    #[serde(default)]
    done: Option<FinishedStream>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct TenantCk {
    name: String,
    budget_bytes: u64,
    #[serde(default)]
    baseline: Option<String>,
    streams: Vec<StreamCk>,
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct DaemonCk {
    tenants: Vec<TenantCk>,
}

struct ServiceState {
    cfg: DaemonConfig,
    tenants: BTreeMap<String, Tenant>,
    journal: fs::File,
    records_since_ck: u64,
    ingests: u64,
    records_total: u64,
}

/// A daemon failure surfaced to the caller of [`Daemon::spawn`].
#[derive(Debug)]
pub enum DaemonError {
    /// Filesystem or socket failure.
    Io(std::io::Error),
    /// Trial store failure.
    Store(StoreError),
    /// Durable state exists but cannot be loaded (corrupt checkpoint,
    /// engine/config mismatch).
    Recovery(String),
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonError::Io(e) => write!(f, "daemon I/O failed: {e}"),
            DaemonError::Store(e) => write!(f, "daemon trial store failed: {e}"),
            DaemonError::Recovery(m) => write!(f, "daemon recovery failed: {m}"),
        }
    }
}

impl std::error::Error for DaemonError {}

impl From<std::io::Error> for DaemonError {
    fn from(e: std::io::Error) -> Self {
        DaemonError::Io(e)
    }
}

impl From<StoreError> for DaemonError {
    fn from(e: StoreError) -> Self {
        DaemonError::Store(e)
    }
}

impl ServiceState {
    fn spill_dir(cfg: &DaemonConfig, tenant: &str) -> PathBuf {
        cfg.data_dir.join("spill").join(tenant)
    }

    fn state_path(cfg: &DaemonConfig) -> PathBuf {
        cfg.data_dir.join("state.json")
    }

    fn journal_path(cfg: &DaemonConfig) -> PathBuf {
        cfg.data_dir.join("journal.jsonl")
    }

    /// Load durable state (checkpoint + journal replay) or start empty.
    fn open(cfg: DaemonConfig) -> Result<Self, DaemonError> {
        fs::create_dir_all(&cfg.data_dir)?;
        let mut tenants = BTreeMap::new();
        let state_path = Self::state_path(&cfg);
        if state_path.exists() {
            let raw = fs::read_to_string(&state_path)?;
            let ck: DaemonCk = serde_json::from_str(&raw)
                .map_err(|e| DaemonError::Recovery(format!("state.json: {e}")))?;
            for tck in ck.tenants {
                let mut store = TrialStore::open(Self::spill_dir(&cfg, &tck.name), tck.budget_bytes)?;
                let mut streams = BTreeMap::new();
                for sck in tck.streams {
                    store.adopt(&sck.name, sck.ingested)?;
                    let engine = match sck.engine {
                        None => None,
                        Some(eck) => {
                            let id = engine_id_for(&tck.name, &sck.name);
                            let eng = IncrementalComparison::resume_checked(
                                eck,
                                id,
                                &cfg.stream_config(),
                            )
                            .map_err(|e| {
                                DaemonError::Recovery(format!(
                                    "engine {}/{}: {e}",
                                    tck.name, sck.name
                                ))
                            })?;
                            Some(eng)
                        }
                    };
                    streams.insert(
                        sck.name,
                        StreamState {
                            ingested: sck.ingested,
                            finished: sck.finished,
                            engine,
                            done: sck.done,
                        },
                    );
                }
                tenants.insert(
                    tck.name,
                    Tenant {
                        budget_bytes: tck.budget_bytes,
                        store,
                        baseline: tck.baseline,
                        streams,
                        matrix: None,
                    },
                );
            }
        }
        let journal_path = Self::journal_path(&cfg);
        let replay: Vec<JournalOp> = if journal_path.exists() {
            let raw = fs::read_to_string(&journal_path)?;
            let mut ops = Vec::new();
            for line in raw.lines() {
                match serde_json::from_str(line) {
                    Ok(op) => ops.push(op),
                    // A crash can truncate the final append mid-line;
                    // everything before it is intact.
                    Err(_) => break,
                }
            }
            ops
        } else {
            Vec::new()
        };
        let journal = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&journal_path)?;
        let mut st = ServiceState {
            cfg,
            tenants,
            journal,
            records_since_ck: 0,
            ingests: 0,
            records_total: 0,
        };
        for op in replay {
            // Ops already covered by the checkpoint fail their apply
            // (tenant exists, ingest overlap) — that is the idempotency
            // contract, not an error.
            let _ = st.apply(op);
        }
        Ok(st)
    }

    fn journal(&mut self, op: &JournalOp) -> Result<(), String> {
        let line = serde_json::to_string(op).map_err(|e| format!("journal encode: {e}"))?;
        self.journal
            .write_all(line.as_bytes())
            .and_then(|_| self.journal.write_all(b"\n"))
            .and_then(|_| self.journal.flush())
            .map_err(|e| format!("journal append: {e}"))
    }

    /// Apply one mutating op. Shared by the wire handlers (after
    /// journaling) and recovery replay — the single ingestion path that
    /// keeps replayed state bit-identical to the uninterrupted run.
    fn apply(&mut self, op: JournalOp) -> Result<Response, String> {
        match op {
            JournalOp::CreateTenant {
                tenant,
                budget_bytes,
            } => {
                if self.tenants.contains_key(&tenant) {
                    return Err(format!("tenant `{tenant}` already exists"));
                }
                let budget = if budget_bytes == 0 {
                    self.cfg.default_budget_bytes
                } else {
                    budget_bytes
                };
                let store = TrialStore::open(Self::spill_dir(&self.cfg, &tenant), budget)
                    .map_err(|e| e.to_string())?;
                self.tenants.insert(
                    tenant.clone(),
                    Tenant {
                        budget_bytes: budget,
                        store,
                        baseline: None,
                        streams: BTreeMap::new(),
                        matrix: None,
                    },
                );
                if obs::is_enabled() {
                    obs::counter_inc("service.tenants.created");
                    obs::gauge_set("service.tenants", self.tenants.len() as u64);
                }
                Ok(Response::Ok)
            }
            JournalOp::DropTenant { tenant } => {
                let Some(mut t) = self.tenants.remove(&tenant) else {
                    return Err(format!("no tenant `{tenant}`"));
                };
                for name in t.store.keys() {
                    let _ = t.store.remove(&name);
                }
                let _ = fs::remove_dir_all(Self::spill_dir(&self.cfg, &tenant));
                if obs::is_enabled() {
                    obs::counter_inc("service.tenants.dropped");
                    obs::gauge_set("service.tenants", self.tenants.len() as u64);
                }
                Ok(Response::Ok)
            }
            JournalOp::OpenStream { tenant, stream } => {
                let cfg_stream = self.cfg.stream_config();
                let t = self
                    .tenants
                    .get_mut(&tenant)
                    .ok_or_else(|| format!("no tenant `{tenant}`"))?;
                if t.streams.contains_key(&stream) {
                    return Err(format!("stream `{tenant}/{stream}` already open"));
                }
                let engine = if t.baseline.is_none() {
                    t.baseline = Some(stream.clone());
                    None
                } else {
                    Some(
                        IncrementalComparison::new(cfg_stream)
                            .with_engine_id(engine_id_for(&tenant, &stream)),
                    )
                };
                t.streams.insert(
                    stream,
                    StreamState {
                        ingested: 0,
                        finished: false,
                        engine,
                        done: None,
                    },
                );
                t.matrix = None;
                if obs::is_enabled() {
                    obs::counter_inc("service.streams.opened");
                }
                Ok(Response::Ok)
            }
            JournalOp::Ingest {
                tenant,
                stream,
                seq,
                records,
            } => {
                let t = self
                    .tenants
                    .get_mut(&tenant)
                    .ok_or_else(|| format!("no tenant `{tenant}`"))?;
                let s = t
                    .streams
                    .get(&stream)
                    .ok_or_else(|| format!("no stream `{tenant}/{stream}`"))?;
                if s.finished {
                    return Err(format!("stream `{tenant}/{stream}` is finished"));
                }
                if seq > s.ingested {
                    return Err(format!(
                        "ingest gap on `{tenant}/{stream}`: batch starts at {seq}, stream has {}",
                        s.ingested
                    ));
                }
                // Idempotent resend: skip records the stream already has.
                let skip = (s.ingested - seq) as usize;
                if skip >= records.len() {
                    return Ok(Response::Ingested { total: s.ingested });
                }
                let baseline_name = t
                    .baseline
                    .clone()
                    .ok_or_else(|| format!("tenant `{tenant}` has no baseline stream"))?;
                let fresh: Vec<Observation> =
                    records[skip..].iter().map(|&w| w.into()).collect();
                t.store.append(&stream, &fresh).map_err(|e| e.to_string())?;
                let is_baseline = stream == baseline_name;
                let s = t.streams.get_mut(&stream).expect("checked above");
                s.ingested += fresh.len() as u64;
                let total = s.ingested;
                if is_baseline {
                    // Baseline grew: advance side A of every live engine.
                    // An engine opened after the baseline already had
                    // data may still lag side A; it must be caught up
                    // from the store *before* the fresh tail, or it
                    // would see records out of order and its κ would
                    // diverge from batch analysis.
                    let pre_len = total - fresh.len() as u64;
                    let any_lagging = t.streams.values().any(|o| {
                        o.engine
                            .as_ref()
                            .is_some_and(|e| (e.seen_a() as u64) < pre_len)
                    });
                    let old_base: Vec<Observation> = if any_lagging {
                        t.store.get(&stream).map_err(|e| e.to_string())?[..pre_len as usize]
                            .to_vec()
                    } else {
                        Vec::new()
                    };
                    for other in t.streams.values_mut() {
                        if let Some(eng) = other.engine.as_mut() {
                            let fed = eng.seen_a() as u64;
                            if fed < pre_len {
                                for o in &old_base[fed as usize..] {
                                    eng.push(Side::A, o.id, o.t_ps);
                                }
                            }
                            for o in &fresh {
                                eng.push(Side::A, o.id, o.t_ps);
                            }
                        }
                    }
                } else {
                    // Comparison stream: feed side B, then catch side A
                    // up to the baseline's current length (covers
                    // streams opened after the baseline had data).
                    let base_len = t.streams[&baseline_name].ingested;
                    let s = t.streams.get_mut(&stream).expect("checked above");
                    let eng = s.engine.as_mut().expect("live comparison stream");
                    for o in &fresh {
                        eng.push(Side::B, o.id, o.t_ps);
                    }
                    let fed_a = eng.seen_a() as u64;
                    if fed_a < base_len {
                        let tail: Vec<Observation> = t
                            .store
                            .get(&baseline_name)
                            .map_err(|e| e.to_string())?[fed_a as usize..base_len as usize]
                            .to_vec();
                        let s = t.streams.get_mut(&stream).expect("checked above");
                        let eng = s.engine.as_mut().expect("live comparison stream");
                        for o in &tail {
                            eng.push(Side::A, o.id, o.t_ps);
                        }
                    }
                }
                t.matrix = None;
                self.ingests += 1;
                self.records_total += fresh.len() as u64;
                self.records_since_ck += fresh.len() as u64;
                if obs::is_enabled() {
                    obs::counter_inc("service.ingest.requests");
                    obs::counter_add("service.ingest.records", fresh.len() as u64);
                    obs::counter_add(&format!("service.tenant.{tenant}.records"), fresh.len() as u64);
                    obs::gauge_set(
                        "service.store.resident_bytes",
                        self.tenants.values().map(|t| t.store.resident_bytes()).sum(),
                    );
                }
                Ok(Response::Ingested { total })
            }
            JournalOp::Finish { tenant, stream } => {
                let t = self
                    .tenants
                    .get_mut(&tenant)
                    .ok_or_else(|| format!("no tenant `{tenant}`"))?;
                let s = t
                    .streams
                    .get(&stream)
                    .ok_or_else(|| format!("no stream `{tenant}/{stream}`"))?;
                if s.finished {
                    return Err(format!("stream `{tenant}/{stream}` already finished"));
                }
                let baseline_name = t
                    .baseline
                    .clone()
                    .ok_or_else(|| format!("tenant `{tenant}` has no baseline stream"))?;
                if s.is_baseline() {
                    let s = t.streams.get_mut(&stream).expect("checked above");
                    s.finished = true;
                    t.matrix = None;
                    return Ok(Response::Finished { summary: None });
                }
                if !t.streams[&baseline_name].finished {
                    return Err(format!(
                        "finish baseline `{tenant}/{baseline_name}` before its comparison streams"
                    ));
                }
                // Flush the side-A tail, then finalize the engine.
                let base_len = t.streams[&baseline_name].ingested;
                let s = t.streams.get_mut(&stream).expect("checked above");
                let eng = s.engine.as_mut().expect("live comparison stream");
                let fed_a = eng.seen_a() as u64;
                if fed_a < base_len {
                    let tail: Vec<Observation> = t
                        .store
                        .get(&baseline_name)
                        .map_err(|e| e.to_string())?[fed_a as usize..base_len as usize]
                        .to_vec();
                    let s = t.streams.get_mut(&stream).expect("checked above");
                    let eng = s.engine.as_mut().expect("live comparison stream");
                    for o in &tail {
                        eng.push(Side::A, o.id, o.t_ps);
                    }
                }
                let s = t.streams.get_mut(&stream).expect("checked above");
                let eng = s.engine.take().expect("live comparison stream");
                let out = eng.finalize(stream.clone());
                let done = FinishedStream {
                    comparison: out.comparison,
                    snapshots: out.snapshots,
                };
                let resp = Response::Finished {
                    summary: Some(WireFinal::from(&done.comparison)),
                };
                s.finished = true;
                s.done = Some(done);
                t.matrix = None;
                if obs::is_enabled() {
                    obs::counter_inc("service.streams.finished");
                }
                Ok(resp)
            }
        }
    }

    /// Durable checkpoint: spill every dirty trial, write `state.json`
    /// atomically, truncate the journal.
    fn checkpoint(&mut self) -> Result<(), String> {
        let _span = obs::span("service.checkpoint");
        let mut tenants = Vec::new();
        for (name, t) in &mut self.tenants {
            t.store.flush_all().map_err(|e| e.to_string())?;
            let mut streams = Vec::new();
            for (sname, s) in &t.streams {
                streams.push(StreamCk {
                    name: sname.clone(),
                    ingested: s.ingested,
                    finished: s.finished,
                    is_baseline: Some(sname) == t.baseline.as_ref(),
                    engine: s.engine.as_ref().map(IncrementalComparison::checkpoint),
                    done: s.done.clone(),
                });
            }
            tenants.push(TenantCk {
                name: name.clone(),
                budget_bytes: t.budget_bytes,
                baseline: t.baseline.clone(),
                streams,
            });
        }
        let ck = DaemonCk { tenants };
        let json = serde_json::to_string(&ck).map_err(|e| format!("state encode: {e}"))?;
        let path = Self::state_path(&self.cfg);
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, json.as_bytes()).map_err(|e| format!("state write: {e}"))?;
        fs::rename(&tmp, &path).map_err(|e| format!("state rename: {e}"))?;
        self.journal =
            fs::File::create(Self::journal_path(&self.cfg)).map_err(|e| format!("journal: {e}"))?;
        self.records_since_ck = 0;
        if obs::is_enabled() {
            obs::counter_inc("service.checkpoints");
        }
        Ok(())
    }

    /// Journal + apply + cadence checkpoint — the wire path for every
    /// mutating request.
    fn mutate(&mut self, op: JournalOp) -> Response {
        if let Err(m) = self.journal(&op) {
            return Response::Error { message: m };
        }
        let resp = match self.apply(op) {
            Ok(r) => r,
            Err(m) => return Response::Error { message: m },
        };
        if self.cfg.checkpoint_every_records > 0
            && self.records_since_ck >= self.cfg.checkpoint_every_records
        {
            // The op itself is journaled and applied; a failed cadence
            // checkpoint must not make the client believe the op failed
            // (a retry would then hit a spurious "already exists"
            // refusal). Durability is unharmed — the journal still
            // covers everything since the last good checkpoint — so
            // surface the failure out of band and retry next cadence.
            if let Err(m) = self.checkpoint() {
                eprintln!("choir-serve: cadence checkpoint failed: {m}");
                if obs::is_enabled() {
                    obs::counter_inc("service.checkpoint.failures");
                }
            }
        }
        resp
    }

    fn snapshot_of(&mut self, tenant: &str, stream: &str) -> Result<Response, String> {
        let t = self
            .tenants
            .get_mut(tenant)
            .ok_or_else(|| format!("no tenant `{tenant}`"))?;
        let s = t
            .streams
            .get(stream)
            .ok_or_else(|| format!("no stream `{tenant}/{stream}`"))?;
        if s.is_baseline() && s.done.is_none() {
            return Err(format!("`{tenant}/{stream}` is the baseline; it has no score"));
        }
        if let Some(done) = &s.done {
            let c = &done.comparison;
            return Ok(Response::Snapshot {
                seen_a: c.a_len as u64,
                seen_b: c.b_len as u64,
                common: c.common as u64,
                running: WireKappa::from(&c.metrics),
            });
        }
        let eng = s.engine.as_ref().expect("live comparison stream");
        let (seen_a, seen_b, common) = (eng.seen_a(), eng.seen_b(), eng.matched());
        // Score the current prefix without perturbing the live engine:
        // clone it through its own checkpoint (cheap relative to a
        // query) and finalize the clone.
        let clone = IncrementalComparison::resume(eng.checkpoint());
        let out = clone.finalize(stream);
        Ok(Response::Snapshot {
            seen_a: seen_a as u64,
            seen_b: seen_b as u64,
            common: common as u64,
            running: WireKappa::from(&out.comparison.metrics),
        })
    }

    fn trail_of(&self, tenant: &str, stream: &str) -> Result<Response, String> {
        let t = self
            .tenants
            .get(tenant)
            .ok_or_else(|| format!("no tenant `{tenant}`"))?;
        let s = t
            .streams
            .get(stream)
            .ok_or_else(|| format!("no stream `{tenant}/{stream}`"))?;
        let snaps: &[KappaSnapshot] = if let Some(done) = &s.done {
            &done.snapshots
        } else if let Some(eng) = &s.engine {
            eng.snapshots()
        } else {
            return Err(format!("`{tenant}/{stream}` is the baseline; it has no trail"));
        };
        Ok(Response::Trail {
            points: snaps.iter().map(WireTrailPoint::from).collect(),
        })
    }

    fn matrix_of(&mut self, tenant: &str) -> Result<Response, String> {
        let shards = thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let t = self
            .tenants
            .get_mut(tenant)
            .ok_or_else(|| format!("no tenant `{tenant}`"))?;
        if let Some((labels, cells)) = &t.matrix {
            return Ok(Response::Matrix {
                labels: labels.clone(),
                cells: cells.clone(),
            });
        }
        let labels = t.store.keys();
        if labels.len() < 2 {
            return Err(format!(
                "tenant `{tenant}` has {} stream(s); a matrix needs at least 2",
                labels.len()
            ));
        }
        let mut trials = Vec::with_capacity(labels.len());
        for name in &labels {
            trials.push(t.store.trial(name).map_err(|e| e.to_string())?);
        }
        let (matrix, _stats) =
            all_pairs_sharded_with(&trials, shards, &KappaConfig::paper())
                .map_err(|e| format!("all-pairs analysis failed: {e:?}"))?;
        let mut cells = Vec::with_capacity(matrix.pairs());
        let n = labels.len();
        for i in 0..n {
            for j in i + 1..n {
                let c = matrix.get(i, j).expect("in-range off-diagonal cell");
                cells.push(WireCell {
                    i: i as u64,
                    j: j as u64,
                    score: WireKappa::from(&c.metrics),
                    common: c.common as u64,
                    missing: c.missing as u64,
                    extra: c.extra as u64,
                });
            }
        }
        t.matrix = Some((labels.clone(), cells.clone()));
        if obs::is_enabled() {
            obs::counter_inc("service.matrix.computed");
        }
        Ok(Response::Matrix { labels, cells })
    }

    fn stats(&self) -> Response {
        let mut resident = 0;
        let mut budget = 0;
        let mut evictions = 0;
        let mut reloads = 0;
        let mut streams = 0;
        for t in self.tenants.values() {
            let s = t.store.stats();
            resident += s.resident_bytes;
            budget += s.budget_bytes;
            evictions += s.evictions;
            reloads += s.reloads;
            streams += t.streams.len() as u64;
        }
        Response::Stats {
            tenants: self.tenants.len() as u64,
            streams,
            store_resident_bytes: resident,
            store_budget_bytes: budget,
            store_evictions: evictions,
            store_reloads: reloads,
            ingests: self.ingests,
            records: self.records_total,
        }
    }

    /// Handle one request. The bool asks the serve loop to stop.
    fn handle(&mut self, req: Request) -> (Response, bool) {
        match req {
            Request::Ping => (Response::Ok, false),
            Request::CreateTenant {
                tenant,
                budget_bytes,
            } => {
                if !valid_name(&tenant) {
                    return (bad_name(&tenant), false);
                }
                (
                    self.mutate(JournalOp::CreateTenant {
                        tenant,
                        budget_bytes,
                    }),
                    false,
                )
            }
            Request::DropTenant { tenant } => {
                (self.mutate(JournalOp::DropTenant { tenant }), false)
            }
            Request::OpenStream { tenant, stream } => {
                if !valid_name(&stream) {
                    return (bad_name(&stream), false);
                }
                (self.mutate(JournalOp::OpenStream { tenant, stream }), false)
            }
            Request::Ingest {
                tenant,
                stream,
                seq,
                records,
            } => (
                self.mutate(JournalOp::Ingest {
                    tenant,
                    stream,
                    seq,
                    records,
                }),
                false,
            ),
            Request::FinishStream { tenant, stream } => {
                (self.mutate(JournalOp::Finish { tenant, stream }), false)
            }
            Request::Snapshot { tenant, stream } => (
                self.snapshot_of(&tenant, &stream)
                    .unwrap_or_else(|message| Response::Error { message }),
                false,
            ),
            Request::Trail { tenant, stream } => (
                self.trail_of(&tenant, &stream)
                    .unwrap_or_else(|message| Response::Error { message }),
                false,
            ),
            Request::Matrix { tenant } => (
                self.matrix_of(&tenant)
                    .unwrap_or_else(|message| Response::Error { message }),
                false,
            ),
            Request::StreamStatus { tenant, stream } => {
                let resp = match self.tenants.get(&tenant) {
                    None => Response::Error {
                        message: format!("no tenant `{tenant}`"),
                    },
                    Some(t) => match t.streams.get(&stream) {
                        None => Response::Error {
                            message: format!("no stream `{tenant}/{stream}`"),
                        },
                        Some(s) => Response::Status {
                            ingested: s.ingested,
                            finished: s.finished,
                            baseline: Some(&stream) == t.baseline.as_ref(),
                        },
                    },
                };
                (resp, false)
            }
            Request::Stats => (self.stats(), false),
            Request::Checkpoint => (
                match self.checkpoint() {
                    Ok(()) => Response::Ok,
                    Err(message) => Response::Error { message },
                },
                false,
            ),
            Request::Shutdown => (
                match self.checkpoint() {
                    Ok(()) => Response::Ok,
                    Err(message) => Response::Error { message },
                },
                true,
            ),
        }
    }
}

fn bad_name(s: &str) -> Response {
    Response::Error {
        message: format!(
            "`{s}` is not a valid name (1-64 chars of [A-Za-z0-9_-])"
        ),
    }
}

/// Spawner for the TCP serve loop.
pub struct Daemon;

/// Live per-connection handler threads, with a socket clone each so a
/// stopping daemon can unblock handlers parked in `recv_request`.
/// Finished entries are pruned on every accept; the rest are shut down
/// and joined by [`DaemonHandle::kill`]/[`DaemonHandle::shutdown`]/
/// [`DaemonHandle::wait`], so no handler can still be journaling after
/// those return.
type ConnRegistry = Mutex<Vec<(Option<TcpStream>, thread::JoinHandle<()>)>>;

/// A running daemon. Dropping the handle does **not** stop the daemon;
/// call [`DaemonHandle::shutdown`] (graceful, checkpoints) or
/// [`DaemonHandle::kill`] (hard stop, no checkpoint — the crash the
/// recovery path is built for).
pub struct DaemonHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<thread::JoinHandle<()>>,
    state: Arc<Mutex<ServiceState>>,
    conns: Arc<ConnRegistry>,
}

impl Daemon {
    /// Recover (or initialize) durable state under `cfg.data_dir`, bind
    /// `addr` (use port 0 for an ephemeral port), and serve connections
    /// on a background thread, one handler thread per connection.
    pub fn spawn(cfg: DaemonConfig, addr: &str) -> Result<DaemonHandle, DaemonError> {
        let state = Arc::new(Mutex::new(ServiceState::open(cfg)?));
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<ConnRegistry> = Arc::new(Mutex::new(Vec::new()));
        let accept_state = Arc::clone(&state);
        let accept_stop = Arc::clone(&stop);
        let accept_conns = Arc::clone(&conns);
        let thread = thread::spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(conn) = conn else { continue };
                let st = Arc::clone(&accept_state);
                let stop = Arc::clone(&accept_stop);
                let sock = conn.try_clone().ok();
                let handler = thread::spawn(move || serve_connection(conn, st, stop, local));
                let mut reg = accept_conns.lock().expect("conn registry lock");
                reg.retain(|(_, h)| !h.is_finished());
                reg.push((sock, handler));
            }
        });
        Ok(DaemonHandle {
            addr: local,
            stop,
            thread: Some(thread),
            state,
            conns,
        })
    }
}

fn serve_connection(
    conn: TcpStream,
    state: Arc<Mutex<ServiceState>>,
    stop: Arc<AtomicBool>,
    local: SocketAddr,
) {
    let mut reader = match conn.try_clone() {
        Ok(r) => r,
        Err(_) => return,
    };
    let mut writer = conn;
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let req = match recv_request(&mut reader) {
            Ok(Some(r)) => r,
            Ok(None) => return, // peer hung up cleanly
            Err(e) => {
                let _ = send_response(
                    &mut writer,
                    &Response::Error {
                        message: e.to_string(),
                    },
                );
                return;
            }
        };
        let (resp, shutdown) = {
            let mut st = state.lock().expect("service state lock");
            st.handle(req)
        };
        let _ = send_response(&mut writer, &resp);
        if shutdown {
            stop.store(true, Ordering::SeqCst);
            // The accept loop is blocked in accept(); poke it so it
            // observes the flag and exits.
            let _ = TcpStream::connect(local);
            return;
        }
    }
}

impl DaemonHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Block until the serve loop exits (a client sent `Shutdown`,
    /// which checkpoints before stopping), then reap every handler
    /// thread. For `choir-serve`'s foreground mode.
    pub fn wait(mut self) {
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.join_connections();
    }

    /// Graceful stop: checkpoint durable state, then stop accepting.
    pub fn shutdown(mut self) -> Result<(), DaemonError> {
        {
            let mut st = self.state.lock().expect("service state lock");
            st.checkpoint().map_err(DaemonError::Recovery)?;
        }
        self.stop_and_join();
        Ok(())
    }

    /// Hard stop without a checkpoint — simulates a crash. Everything
    /// since the last checkpoint survives only in the journal, which is
    /// exactly what the recovery path replays.
    pub fn kill(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.join_connections();
    }

    /// Shut down every live connection socket (unblocking handlers
    /// parked in `recv_request`) and join their threads, so that no
    /// handler can still touch `data_dir` after the daemon stops — a
    /// re-spawn on the same directory must never race a leftover
    /// handler for the journal.
    fn join_connections(&self) {
        let drained: Vec<_> = {
            let mut reg = self.conns.lock().expect("conn registry lock");
            reg.drain(..).collect()
        };
        for (sock, handler) in drained {
            if let Some(s) = sock {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            let _ = handler.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_ids_are_nonzero_and_distinct_per_stream() {
        let a = engine_id_for("acme", "run-b");
        let b = engine_id_for("acme", "run-c");
        let c = engine_id_for("acme2", "run-b");
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, engine_id_for("acme", "run-b"));
    }

    #[test]
    fn name_validation() {
        assert!(valid_name("tenant-1_A"));
        assert!(!valid_name(""));
        assert!(!valid_name("a/b"));
        assert!(!valid_name("a b"));
        assert!(!valid_name(&"x".repeat(65)));
    }
}
