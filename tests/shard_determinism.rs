//! Property-based tests of the sharded discrete-event engine, at the
//! testbed level: the multi-domain ring fleet (DESIGN.md §14) must be
//! deterministic in `(seed, shards)` and — the stronger contract —
//! *shard-layout invariant*: any shard count produces merged fleet
//! trials byte-identical to the serial engine's, across randomized
//! seeds, fleet sizes, and engine tunings, with the downstream κ
//! analysis matching bit for bit.

use choir::netsim::QueueKind;
use choir::testbed::{
    run_multidomain, MultiDomainConfig, MultiDomainOutput, MultiDomainProfile, SimTuning,
};
use proptest::prelude::*;

fn fleet(sites: usize, scale: f64, seed: u64, tuning: SimTuning) -> MultiDomainOutput {
    let mut profile = MultiDomainProfile::ring(sites);
    profile.runs = 2;
    run_multidomain(
        &MultiDomainConfig {
            profile,
            scale,
            seed,
        },
        tuning,
    )
}

/// A randomized engine tuning (every combination the serial engine
/// itself supports; `shards` is supplied by each property).
fn arb_tuning() -> impl Strategy<Value = SimTuning> {
    (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>()).prop_map(
        |(coalesce, heap, guard, copy)| SimTuning {
            coalesce,
            queue: if heap {
                QueueKind::Heap
            } else {
                QueueKind::Wheel
            },
            guard_slot_alloc: guard,
            copy_stamp: copy,
            shards: 0,
        },
    )
}

proptest! {
    // Few cases: each one runs multiple full fleet experiments.
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Fixed `(seed, shards)` ⇒ bit-identical fleet trials, engine
    /// counters, and synchronization schedule on every repeat.
    #[test]
    fn sharded_fleet_repeats_bit_identically(
        seed in any::<u64>(),
        sites in 2usize..=3,
        shards in 1usize..=3,
        tuning in arb_tuning(),
    ) {
        let tuning = SimTuning { shards, ..tuning };
        let a = fleet(sites, 0.0002, seed, tuning);
        let b = fleet(sites, 0.0002, seed, tuning);
        prop_assert_eq!(a.trials, b.trials);
        prop_assert_eq!(a.sim_stats, b.sim_stats);
        prop_assert_eq!(a.sync, b.sync);
    }

    /// Any shard count — including a single worker and more workers
    /// than sites — produces trials byte-identical to the serial
    /// engine, under every engine tuning.
    #[test]
    fn sharded_fleet_matches_serial_byte_for_byte(
        seed in any::<u64>(),
        sites in 2usize..=3,
        shards in 1usize..=4,
        tuning in arb_tuning(),
    ) {
        let serial = fleet(sites, 0.0002, seed, tuning);
        let sharded = fleet(sites, 0.0002, seed, SimTuning { shards, ..tuning });
        prop_assert_eq!(&sharded.trials, &serial.trials);
        // Summing counters are exact across the partition.
        prop_assert_eq!(
            sharded.sim_stats.events_processed,
            serial.sim_stats.events_processed
        );
        prop_assert_eq!(
            sharded.sim_stats.remote_packets,
            serial.sim_stats.remote_packets
        );
    }

    /// κ is a pure function of the trials, so the whole downstream
    /// analysis — per-run comparisons against run A — matches the
    /// serial engine bit for bit.
    #[test]
    fn sharded_fleet_kappa_is_bit_equal_to_serial(
        seed in any::<u64>(),
        shards in 2usize..=3,
    ) {
        let serial = fleet(3, 0.0003, seed, SimTuning::default());
        let sharded = fleet(3, 0.0003, seed, SimTuning { shards, ..SimTuning::default() });
        prop_assert_eq!(serial.report.runs.len(), sharded.report.runs.len());
        for (s, p) in serial.report.runs.iter().zip(&sharded.report.runs) {
            prop_assert_eq!(s.metrics.kappa.to_bits(), p.metrics.kappa.to_bits());
            prop_assert_eq!(s.metrics.u.to_bits(), p.metrics.u.to_bits());
            prop_assert_eq!(s.metrics.o.to_bits(), p.metrics.o.to_bits());
            prop_assert_eq!(s.metrics.l.to_bits(), p.metrics.l.to_bits());
            prop_assert_eq!(s.metrics.i.to_bits(), p.metrics.i.to_bits());
        }
    }
}
