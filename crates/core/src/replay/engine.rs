//! Real-time replay driver — the busy-spin loop behind the paper's
//! throughput claim ("Choir … can sustain peak speeds of 100 Gbps
//! (8.9 Mpps)", §10).
//!
//! Unlike the simulator (which *schedules* wake-ups), this driver runs the
//! paper's actual loop shape on a real CPU:
//!
//! ```text
//! for each recorded burst:
//!     while tsc() < burst.tsc + delta: spin
//!     tx_burst(port, burst)
//! ```
//!
//! The loop allocates nothing: bursts are rebuilt from shared mbuf handles
//! and the spin is a bare TSC read. `choir-bench` drives it over the
//! loopback backend to measure sustained Mpps; the quickstart example uses
//! it end-to-end.

use choir_dpdk::{Dataplane, PortId};

use super::recording::Recording;
use super::scheduler::ReplayStats;

/// Outcome of a real-time replay run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineReport {
    /// Transmit counters.
    pub stats: ReplayStats,
    /// Wall time the replay took, in nanoseconds.
    pub elapsed_ns: u64,
    /// Achieved packet rate over the active replay window.
    pub pps: f64,
    /// Achieved wire-equivalent bit rate (includes Ethernet overhead), in
    /// bits per second.
    pub wire_bps: f64,
}

/// Replay `recording` on `port`, spinning on the TSC for each burst's
/// release time. `speedup` divides the recorded inter-burst gaps (1 = as
/// recorded; `u64::MAX` effectively back-to-back), letting benches probe
/// the loop's ceiling beyond the recorded rate.
///
/// Returns once every burst is transmitted. Packets the NIC rejects are
/// retried in a bounded spin (order preservation), so `packets_sent`
/// always equals the recording's packet count on return.
pub fn run_replay_spin<D: Dataplane>(
    recording: &Recording,
    dp: &mut D,
    port: PortId,
    speedup: u64,
) -> EngineReport {
    assert!(speedup >= 1, "speedup must be >= 1");
    let mut stats = ReplayStats::default();
    let first = match recording.first_tsc() {
        Some(f) => f,
        None => {
            return EngineReport {
                stats,
                elapsed_ns: 0,
                pps: 0.0,
                wire_bps: 0.0,
            }
        }
    };

    let start_tsc = dp.tsc();
    let mut wire_bytes: u64 = 0;
    // One burst buffer reused across the whole replay: the hot loop
    // allocates nothing.
    let mut burst = choir_dpdk::Burst::new();

    for rb in recording.bursts() {
        let release = start_tsc + (rb.tsc - first) / speedup;
        // The paper's spin: loop over a TSC read until the burst is due.
        while dp.tsc() < release {
            std::hint::spin_loop();
        }
        // Lateness is how far past the release time the spin loop woke —
        // measured before transmission so tx time isn't miscounted.
        let late = dp.tsc().saturating_sub(release);
        if late > 0 {
            stats.late_bursts += 1;
            stats.max_lateness_cycles = stats.max_lateness_cycles.max(late);
        }
        burst.clear();
        for m in &rb.pkts {
            burst.push(m.clone()).expect("recorded bursts fit MAX_BURST");
        }
        let total = burst.len() as u64;
        let mut sent = 0u64;
        loop {
            sent += dp.tx_burst(port, &mut burst) as u64;
            if burst.is_empty() {
                break;
            }
            stats.tx_retries += 1;
            std::hint::spin_loop();
        }
        debug_assert_eq!(sent, total);
        stats.packets_sent += sent;
        stats.bursts_sent += 1;
        for m in rb.pkts.iter() {
            wire_bytes += m.frame.wire_len() as u64;
        }
    }

    let elapsed_cycles = dp.tsc() - start_tsc;
    let elapsed_ns = dp.cycles_to_ns(elapsed_cycles).max(1);
    let secs = elapsed_ns as f64 / 1e9;
    EngineReport {
        stats,
        elapsed_ns,
        pps: stats.packets_sent as f64 / secs,
        wire_bps: wire_bytes as f64 * 8.0 / secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use choir_dpdk::loopback::{LoopbackPort, RealClock, RealtimePlane};
    use choir_dpdk::Mempool;
    use choir_packet::Frame;
    use std::thread;

    fn recording_of(pool: &Mempool, bursts: usize, per_burst: usize, gap_cycles: u64) -> Recording {
        let mut rec = Recording::new();
        for b in 0..bursts {
            let pkts: Vec<_> = (0..per_burst)
                .map(|i| {
                    pool.alloc(Frame::truncated(
                        Bytes::from(vec![(b * per_burst + i) as u8; 60]),
                        1400,
                    ))
                    .unwrap()
                })
                .collect();
            rec.push_burst(1_000 + b as u64 * gap_cycles, pkts.iter());
        }
        rec
    }

    #[test]
    fn replays_everything_through_a_drained_sink() {
        let pool = Mempool::new("e", 1 << 14);
        let (port, mut drain) = LoopbackPort::sink(1 << 12);
        let mut plane = RealtimePlane::new(pool.clone(), RealClock::new());
        let pid = plane.add_port(port);
        let rec = recording_of(&pool, 50, 8, 10_000); // 10 us apart

        let consumer = thread::spawn(move || {
            let mut got = 0usize;
            while got < 400 {
                if drain.pop().is_some() {
                    got += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
            got
        });

        let report = run_replay_spin(&rec, &mut plane, pid, 1);
        assert_eq!(report.stats.packets_sent, 400);
        assert_eq!(report.stats.bursts_sent, 50);
        assert_eq!(consumer.join().unwrap(), 400);
        assert!(report.pps > 0.0);
        assert!(report.wire_bps > 0.0);
    }

    #[test]
    fn speedup_compresses_duration() {
        let pool = Mempool::new("e", 1 << 12);
        // Two runs of the same recording; the sped-up one must be faster.
        let rec = recording_of(&pool, 40, 4, 100_000); // 100 us gaps

        let run = |speedup: u64| {
            // Ring is larger than the whole recording: no consumer needed.
            let (port, _drain) = LoopbackPort::sink(1 << 12);
            let mut plane = RealtimePlane::new(pool.clone(), RealClock::new());
            let pid = plane.add_port(port);
            run_replay_spin(&rec, &mut plane, pid, speedup)
        };
        let slow = run(1);
        let fast = run(100);
        assert!(
            fast.elapsed_ns < slow.elapsed_ns / 2,
            "fast {} vs slow {}",
            fast.elapsed_ns,
            slow.elapsed_ns
        );
    }

    #[test]
    fn empty_recording_returns_zero_report() {
        let pool = Mempool::new("e", 16);
        let (port, _drain) = LoopbackPort::sink(16);
        let mut plane = RealtimePlane::new(pool, RealClock::new());
        let pid = plane.add_port(port);
        let r = run_replay_spin(&Recording::new(), &mut plane, pid, 1);
        assert_eq!(r.stats.packets_sent, 0);
        assert_eq!(r.pps, 0.0);
    }

    #[test]
    #[should_panic(expected = "speedup")]
    fn zero_speedup_panics() {
        let pool = Mempool::new("e", 16);
        let (port, _drain) = LoopbackPort::sink(16);
        let mut plane = RealtimePlane::new(pool, RealClock::new());
        let pid = plane.add_port(port);
        run_replay_spin(&Recording::new(), &mut plane, pid, 0);
    }
}
