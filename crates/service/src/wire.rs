//! The daemon's wire protocol: length-prefixed JSON frames.
//!
//! Every message on the socket is one *frame*: a 4-byte little-endian
//! byte count followed by exactly that many bytes of JSON — an
//! externally-tagged [`Request`] from the client, an externally-tagged
//! [`Response`] back. Framing first means a reader never has to scan
//! for JSON boundaries, and a frame cap ([`MAX_FRAME_BYTES`]) bounds
//! what a misbehaving peer can make the daemon allocate.
//!
//! κ values ride the wire twice: as the `f64` (human-readable, what
//! `choir-ctl` prints) **and** as `f64::to_bits` in a `u64` (what the
//! bit-identity gates compare). The JSON float round-trips exactly
//! through the vendored serde_json, but the bits field makes the gate
//! independent of any printer/parser subtlety.
//!
//! The vendored serde data model tops out at 64-bit integers, so the
//! 128-bit packet identity crosses the wire as an `(id_hi, id_lo)`
//! pair ([`WireObs`]).

use std::io::{self, Read, Write};

use choir_core::metrics::{ConsistencyMetrics, KappaSnapshot, Observation, TrialComparison};
use choir_packet::PacketId;
use serde::{Deserialize, Serialize};

/// Hard cap on a single frame's payload. Large ingest batches should be
/// split client-side (the client lib chunks for you); 16 MiB of JSON is
/// already ~200k observations per frame.
pub const MAX_FRAME_BYTES: u32 = 16 << 20;

/// A framing/transport failure (distinct from an in-protocol
/// [`Response::Error`], which means the daemon understood you and said
/// no).
#[derive(Debug)]
pub enum WireError {
    /// Socket-level failure.
    Io(io::Error),
    /// Peer announced a frame larger than [`MAX_FRAME_BYTES`].
    Oversized(u32),
    /// Frame bytes were not valid JSON for the expected message type.
    Parse(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire I/O failed: {e}"),
            WireError::Oversized(n) => {
                write!(f, "peer announced a {n}-byte frame (cap {MAX_FRAME_BYTES})")
            }
            WireError::Parse(m) => write!(f, "frame is not a valid message: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Write one frame: 4-byte LE length, then the payload.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), WireError> {
    let n = u32::try_from(payload.len()).map_err(|_| WireError::Oversized(u32::MAX))?;
    if n > MAX_FRAME_BYTES {
        return Err(WireError::Oversized(n));
    }
    w.write_all(&n.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame's payload. `Ok(None)` on clean EOF at a frame
/// boundary (peer hung up between messages).
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, WireError> {
    let mut len = [0u8; 4];
    match r.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let n = u32::from_le_bytes(len);
    if n > MAX_FRAME_BYTES {
        return Err(WireError::Oversized(n));
    }
    let mut buf = vec![0u8; n as usize];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

/// Serialize + frame a [`Request`].
pub fn send_request(w: &mut impl Write, req: &Request) -> Result<(), WireError> {
    let json = serde_json::to_string(req).map_err(|e| WireError::Parse(e.to_string()))?;
    write_frame(w, json.as_bytes())
}

/// Serialize + frame a [`Response`].
pub fn send_response(w: &mut impl Write, resp: &Response) -> Result<(), WireError> {
    let json = serde_json::to_string(resp).map_err(|e| WireError::Parse(e.to_string()))?;
    write_frame(w, json.as_bytes())
}

/// Read + parse one [`Request`]; `Ok(None)` on clean EOF.
pub fn recv_request(r: &mut impl Read) -> Result<Option<Request>, WireError> {
    let Some(buf) = read_frame(r)? else {
        return Ok(None);
    };
    let s = String::from_utf8(buf).map_err(|e| WireError::Parse(e.to_string()))?;
    serde_json::from_str(&s)
        .map(Some)
        .map_err(|e| WireError::Parse(e.to_string()))
}

/// Read + parse one [`Response`]; `Ok(None)` on clean EOF.
pub fn recv_response(r: &mut impl Read) -> Result<Option<Response>, WireError> {
    let Some(buf) = read_frame(r)? else {
        return Ok(None);
    };
    let s = String::from_utf8(buf).map_err(|e| WireError::Parse(e.to_string()))?;
    serde_json::from_str(&s)
        .map(Some)
        .map_err(|e| WireError::Parse(e.to_string()))
}

/// One observation on the wire: the 128-bit packet identity split into
/// 64-bit halves plus the picosecond timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireObs {
    /// High 64 bits of the packet identity.
    pub id_hi: u64,
    /// Low 64 bits of the packet identity.
    pub id_lo: u64,
    /// Observation timestamp, picoseconds.
    pub t_ps: u64,
}

impl From<Observation> for WireObs {
    fn from(o: Observation) -> Self {
        WireObs {
            id_hi: (o.id.0 >> 64) as u64,
            id_lo: o.id.0 as u64,
            t_ps: o.t_ps,
        }
    }
}

impl From<WireObs> for Observation {
    fn from(w: WireObs) -> Self {
        Observation {
            id: PacketId(((w.id_hi as u128) << 64) | w.id_lo as u128),
            t_ps: w.t_ps,
        }
    }
}

/// Everything a client can ask the daemon.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Create a tenant with a resident-byte trial budget.
    CreateTenant { tenant: String, budget_bytes: u64 },
    /// Drop a tenant and every stream, engine, and spill file it owns.
    DropTenant { tenant: String },
    /// Open a stream under a tenant. The tenant's first opened stream
    /// is its baseline; every later stream is compared against it.
    OpenStream { tenant: String, stream: String },
    /// Append observations. `seq` is the client's record count *before*
    /// this batch: the daemon skips already-ingested overlap (idempotent
    /// resend after a reconnect) and refuses gaps.
    Ingest {
        tenant: String,
        stream: String,
        seq: u64,
        records: Vec<WireObs>,
    },
    /// Declare a stream complete. On a comparison stream this finalizes
    /// its engine against the (already finished) baseline.
    FinishStream { tenant: String, stream: String },
    /// The live running κ of one comparison stream.
    Snapshot { tenant: String, stream: String },
    /// The periodic snapshot trail of one comparison stream.
    Trail { tenant: String, stream: String },
    /// The all-pairs κ matrix over all of a tenant's streams, each at
    /// its currently ingested length (live streams contribute their
    /// prefix so far).
    Matrix { tenant: String },
    /// Ingest progress of one stream (used by clients to resume).
    StreamStatus { tenant: String, stream: String },
    /// Daemon-wide accounting: store stats, tenant/stream counts.
    Stats,
    /// Force a durable checkpoint now (also happens on cadence).
    Checkpoint,
    /// Checkpoint, then stop accepting connections and exit the serve
    /// loop.
    Shutdown,
}

/// κ and its components, with the compound score duplicated as raw bits
/// for the bit-identity gates.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WireKappa {
    /// Compound κ.
    pub kappa: f64,
    /// `kappa.to_bits()` — the gate currency.
    pub kappa_bits: u64,
    /// Uniqueness variation U.
    pub u: f64,
    /// Ordering variation O.
    pub o: f64,
    /// Latency variation L.
    pub l: f64,
    /// IAT variation I.
    pub i: f64,
}

impl From<&ConsistencyMetrics> for WireKappa {
    fn from(m: &ConsistencyMetrics) -> Self {
        WireKappa {
            kappa: m.kappa,
            kappa_bits: m.kappa.to_bits(),
            u: m.u,
            o: m.o,
            l: m.l,
            i: m.i,
        }
    }
}

/// One point of a snapshot trail.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WireTrailPoint {
    /// Observations seen on the baseline side at the snapshot.
    pub seen_a: u64,
    /// Observations seen on this stream's side at the snapshot.
    pub seen_b: u64,
    /// Matched pairs at the snapshot.
    pub common: u64,
    /// Running score at the snapshot.
    pub running: WireKappa,
}

impl From<&KappaSnapshot> for WireTrailPoint {
    fn from(s: &KappaSnapshot) -> Self {
        WireTrailPoint {
            seen_a: s.seen_a as u64,
            seen_b: s.seen_b as u64,
            common: s.common as u64,
            running: WireKappa::from(&s.running),
        }
    }
}

/// One off-diagonal matrix cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireCell {
    /// Row index into the matrix labels.
    pub i: u64,
    /// Column index into the matrix labels (`i < j`).
    pub j: u64,
    /// The cell's score.
    pub score: WireKappa,
    /// Matched pairs.
    pub common: u64,
    /// Baseline-side packets missing from the column trial.
    pub missing: u64,
    /// Column-trial packets absent from the row trial.
    pub extra: u64,
}

/// Summary of a finished comparison stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WireFinal {
    /// Final score vs the tenant baseline.
    pub score: WireKappa,
    /// Baseline length.
    pub a_len: u64,
    /// This stream's length.
    pub b_len: u64,
    /// Matched pairs.
    pub common: u64,
    /// Baseline packets this stream dropped.
    pub missing: u64,
    /// Packets this stream added.
    pub extra: u64,
    /// Packets the edit script moved.
    pub moved: u64,
}

impl From<&TrialComparison> for WireFinal {
    fn from(c: &TrialComparison) -> Self {
        WireFinal {
            score: WireKappa::from(&c.metrics),
            a_len: c.a_len as u64,
            b_len: c.b_len as u64,
            common: c.common as u64,
            missing: c.missing as u64,
            extra: c.extra as u64,
            moved: c.moved as u64,
        }
    }
}

/// Everything the daemon can answer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Response {
    /// Request succeeded, nothing else to say.
    Ok,
    /// Request refused or failed; the connection stays usable.
    Error { message: String },
    /// Ingest accepted (possibly partially deduplicated): the stream's
    /// total record count afterwards.
    Ingested { total: u64 },
    /// Answer to [`Request::StreamStatus`].
    Status {
        /// Records ingested so far.
        ingested: u64,
        /// Stream has been finished.
        finished: bool,
        /// Stream is the tenant baseline.
        baseline: bool,
    },
    /// Finish acknowledged. `summary` is present for comparison streams
    /// (absent for the baseline, which has nothing to compare against).
    Finished {
        #[serde(default)]
        summary: Option<WireFinal>,
    },
    /// Live running κ of a comparison stream.
    Snapshot {
        /// Baseline observations fed so far.
        seen_a: u64,
        /// Stream observations fed so far.
        seen_b: u64,
        /// Matched pairs so far.
        common: u64,
        /// Running score.
        running: WireKappa,
    },
    /// Snapshot trail of a comparison stream.
    Trail { points: Vec<WireTrailPoint> },
    /// All-pairs matrix over all of a tenant's streams at their
    /// currently ingested lengths.
    Matrix {
        /// Stream names, in matrix order.
        labels: Vec<String>,
        /// Upper-triangular cells.
        cells: Vec<WireCell>,
    },
    /// Daemon-wide accounting.
    Stats {
        /// Tenants currently hosted.
        tenants: u64,
        /// Streams across all tenants.
        streams: u64,
        /// Observation bytes resident in the trial store.
        store_resident_bytes: u64,
        /// Sum of per-tenant store budgets.
        store_budget_bytes: u64,
        /// Trials evicted to spill since start.
        store_evictions: u64,
        /// Trials rebuilt from spill since start.
        store_reloads: u64,
        /// Ingest requests served since start.
        ingests: u64,
        /// Observations accepted since start.
        records: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_over_a_buffer() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_frame_is_refused_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        let mut r = &buf[..];
        assert!(matches!(
            read_frame(&mut r),
            Err(WireError::Oversized(n)) if n == MAX_FRAME_BYTES + 1
        ));
    }

    #[test]
    fn truncated_frame_is_an_io_error_not_eof() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&8u32.to_le_bytes());
        buf.extend_from_slice(b"four");
        let mut r = &buf[..];
        assert!(matches!(read_frame(&mut r), Err(WireError::Io(_))));
    }

    #[test]
    fn request_roundtrip() {
        let reqs = vec![
            Request::Ping,
            Request::CreateTenant {
                tenant: "acme".into(),
                budget_bytes: 1 << 20,
            },
            Request::Ingest {
                tenant: "acme".into(),
                stream: "run-b".into(),
                seq: 42,
                records: vec![WireObs {
                    id_hi: u64::MAX,
                    id_lo: 7,
                    t_ps: 1_000,
                }],
            },
            Request::Matrix {
                tenant: "acme".into(),
            },
            Request::Shutdown,
        ];
        let mut buf = Vec::new();
        for r in &reqs {
            send_request(&mut buf, r).unwrap();
        }
        let mut r = &buf[..];
        for want in &reqs {
            let got = recv_request(&mut r).unwrap().unwrap();
            assert_eq!(format!("{got:?}"), format!("{want:?}"));
        }
        assert!(recv_request(&mut r).unwrap().is_none());
    }

    #[test]
    fn response_roundtrip_preserves_kappa_bits() {
        let kappa = 0.923_456_789_012_345_6_f64;
        let resp = Response::Snapshot {
            seen_a: 10,
            seen_b: 9,
            common: 9,
            running: WireKappa {
                kappa,
                kappa_bits: kappa.to_bits(),
                u: 0.1,
                o: 0.0,
                l: 1.5e-9,
                i: 2.5e-7,
            },
        };
        let mut buf = Vec::new();
        send_response(&mut buf, &resp).unwrap();
        let got = recv_response(&mut &buf[..]).unwrap().unwrap();
        let Response::Snapshot { running, .. } = got else {
            panic!("wrong variant");
        };
        assert_eq!(running.kappa_bits, kappa.to_bits());
        assert_eq!(running.kappa.to_bits(), kappa.to_bits(), "JSON f64 round-trip");
    }

    #[test]
    fn wire_obs_roundtrips_u128_identity() {
        let o = Observation {
            id: PacketId((0xDEAD_BEEF_u128 << 64) | 0x1234_5678_9ABC_DEF0),
            t_ps: 77,
        };
        let w = WireObs::from(o);
        assert_eq!(Observation::from(w), o);
    }

    #[test]
    fn garbage_frame_is_a_parse_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"NotAVariant\":{}}").unwrap();
        assert!(matches!(
            recv_request(&mut &buf[..]),
            Err(WireError::Parse(_))
        ));
    }
}
