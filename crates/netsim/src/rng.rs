//! Deterministic per-component randomness.
//!
//! Reproducibility is the paper's subject, so the simulator must itself be
//! reproducible: every stochastic component (each NIC's DMA jitter, each
//! clock's PTP wander, the noise process, …) owns a [`DetRng`] derived
//! from `(master_seed, component label, trial index)`. Re-running with the
//! same seed is bit-identical; changing the trial index re-rolls exactly
//! the processes that physically differ between replay runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A labeled deterministic RNG stream.
pub struct DetRng {
    rng: StdRng,
}

impl DetRng {
    /// Derive a stream from a master seed and a label path.
    pub fn derive(master_seed: u64, labels: &[&str]) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ master_seed;
        for label in labels {
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h ^= 0x2e; // path separator
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        DetRng {
            rng: StdRng::seed_from_u64(h),
        }
    }

    /// Derive with a numeric component (e.g. a trial index).
    pub fn derive_indexed(master_seed: u64, labels: &[&str], index: u64) -> Self {
        let idx = format!("#{index}");
        let mut all: Vec<&str> = labels.to_vec();
        all.push(&idx);
        Self::derive(master_seed, &all)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi]`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.gen_range(lo..=hi)
    }

    /// Standard normal via Box–Muller.
    pub fn std_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Exponential with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Geometric count with success probability `p` (number of failures
    /// before a success; 0 when `p >= 1`).
    pub fn geometric(&mut self, p: f64) -> u64 {
        if p >= 1.0 {
            return 0;
        }
        let p = p.max(1e-12);
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        (u.ln() / (1.0 - p).ln()).floor() as u64
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen::<f64>() < p
    }
}

/// A jitter distribution sampled in picoseconds (possibly signed).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Jitter {
    /// Always zero.
    None,
    /// Constant value.
    Const(i64),
    /// Uniform in `[lo, hi]` ps.
    Uniform(i64, i64),
    /// Normal with mean and standard deviation, in ps.
    Normal {
        /// Mean in ps.
        mean: f64,
        /// Standard deviation in ps.
        sigma: f64,
    },
    /// Exponential (one-sided, positive) with the given mean in ps.
    Exp {
        /// Mean in ps.
        mean: f64,
    },
    /// Mixture: each arm is `(weight, jitter)`; weights need not sum to 1
    /// (they are normalized).
    Mix(Vec<(f64, Jitter)>),
}

impl Jitter {
    /// Sample a signed ps value.
    pub fn sample(&self, rng: &mut DetRng) -> i64 {
        match self {
            Jitter::None => 0,
            Jitter::Const(v) => *v,
            Jitter::Uniform(lo, hi) => {
                debug_assert!(lo <= hi);
                let span = (hi - lo) as f64;
                *lo + (rng.f64() * span) as i64
            }
            Jitter::Normal { mean, sigma } => (mean + sigma * rng.std_normal()).round() as i64,
            Jitter::Exp { mean } => rng.exp(*mean).round() as i64,
            Jitter::Mix(arms) => {
                let total: f64 = arms.iter().map(|(w, _)| *w).sum();
                debug_assert!(total > 0.0, "mixture needs positive weight");
                let mut pick = rng.f64() * total;
                for (w, j) in arms {
                    if pick < *w {
                        return j.sample(rng);
                    }
                    pick -= w;
                }
                arms.last().expect("nonempty mixture").1.sample(rng)
            }
        }
    }

    /// Sample clamped to be non-negative (for physical delays).
    pub fn sample_delay(&self, rng: &mut DetRng) -> u64 {
        self.sample(rng).max(0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic_and_label_sensitive() {
        let mut a1 = DetRng::derive(42, &["nic", "tx"]);
        let mut a2 = DetRng::derive(42, &["nic", "tx"]);
        let mut b = DetRng::derive(42, &["nic", "rx"]);
        let mut c = DetRng::derive(43, &["nic", "tx"]);
        let s1: Vec<u64> = (0..8).map(|_| a1.range_u64(0, u64::MAX - 1)).collect();
        let s2: Vec<u64> = (0..8).map(|_| a2.range_u64(0, u64::MAX - 1)).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.range_u64(0, u64::MAX - 1)).collect();
        let sc: Vec<u64> = (0..8).map(|_| c.range_u64(0, u64::MAX - 1)).collect();
        assert_eq!(s1, s2);
        assert_ne!(s1, sb);
        assert_ne!(s1, sc);
    }

    #[test]
    fn label_concatenation_does_not_collide() {
        // ["ab", "c"] must differ from ["a", "bc"].
        let mut x = DetRng::derive(1, &["ab", "c"]);
        let mut y = DetRng::derive(1, &["a", "bc"]);
        assert_ne!(x.range_u64(0, u64::MAX - 1), y.range_u64(0, u64::MAX - 1));
    }

    #[test]
    fn indexed_derivation_differs_by_trial() {
        let mut t0 = DetRng::derive_indexed(7, &["clock"], 0);
        let mut t1 = DetRng::derive_indexed(7, &["clock"], 1);
        assert_ne!(t0.f64(), t1.f64());
    }

    #[test]
    fn normal_moments_roughly_right() {
        let mut rng = DetRng::derive(5, &["normal"]);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.std_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exp_mean_roughly_right() {
        let mut rng = DetRng::derive(5, &["exp"]);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exp(250.0)).sum::<f64>() / n as f64;
        assert!((mean - 250.0).abs() < 10.0, "mean {mean}");
    }

    #[test]
    fn geometric_mean_roughly_right() {
        let mut rng = DetRng::derive(5, &["geo"]);
        let p: f64 = 0.25;
        let n = 20_000;
        let mean = (0..n).map(|_| rng.geometric(p) as f64).sum::<f64>() / n as f64;
        // E = (1-p)/p = 3.
        assert!((mean - 3.0).abs() < 0.15, "mean {mean}");
        assert_eq!(rng.geometric(1.0), 0);
    }

    #[test]
    fn jitter_sampling_behaves() {
        let mut rng = DetRng::derive(9, &["j"]);
        assert_eq!(Jitter::None.sample(&mut rng), 0);
        assert_eq!(Jitter::Const(-5).sample(&mut rng), -5);
        for _ in 0..100 {
            let v = Jitter::Uniform(-10, 10).sample(&mut rng);
            assert!((-10..=10).contains(&v));
        }
        // Negative normal samples clamp to zero as delays.
        let j = Jitter::Normal {
            mean: -1000.0,
            sigma: 1.0,
        };
        assert_eq!(j.sample_delay(&mut rng), 0);
        let e = Jitter::Exp { mean: 100.0 };
        assert!(e.sample(&mut rng) >= 0);
    }

    #[test]
    fn mixture_selects_all_arms() {
        let mut rng = DetRng::derive(11, &["mix"]);
        let j = Jitter::Mix(vec![(0.5, Jitter::Const(1)), (0.5, Jitter::Const(2))]);
        let mut seen = [false, false];
        for _ in 0..200 {
            match j.sample(&mut rng) {
                1 => seen[0] = true,
                2 => seen[1] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(seen[0] && seen[1]);
    }
}
