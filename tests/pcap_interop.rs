//! pcap interoperability: captures written by the recorder round-trip
//! through the standard nanosecond pcap container back into identical
//! trials, including snap-length (truncated) frames, under randomized
//! inputs.

use bytes::Bytes;
use choir::capture::{Recorder, RecorderConfig};
use choir::dpdk::{App, Burst, Dataplane, Mempool, PortId, PortStats};
use choir::metrics::Trial;
use choir::packet::pcap::{parse_pcap, PcapWriter};
use choir::packet::{ChoirTag, Frame, FrameBuilder};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_frames_roundtrip_through_pcap(
        recs in proptest::collection::vec((0u64..u32::MAX as u64, 16usize..200), 0..40)
    ) {
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        let mut frames = Vec::new();
        let mut ts = 0u64;
        for (i, (dt, len)) in recs.iter().enumerate() {
            ts += dt;
            let mut data = vec![(i % 251) as u8; *len];
            ChoirTag::new(3, 1, i as u64).stamp_trailer(&mut data);
            let f = Frame::new(Bytes::from(data));
            w.write_record(ts, &f).unwrap();
            frames.push((ts, f));
        }
        let buf = w.finish().unwrap();
        let parsed = parse_pcap(&buf).unwrap();
        prop_assert_eq!(parsed.len(), frames.len());
        for (rec, (ts, f)) in parsed.iter().zip(&frames) {
            prop_assert_eq!(rec.ts_ns, *ts);
            prop_assert_eq!(&rec.frame.data, &f.data);
            prop_assert_eq!(rec.frame.packet_id(), f.packet_id());
        }
    }

    #[test]
    fn snap_frames_preserve_identity_and_length(seqs in proptest::collection::vec(0u64..10_000, 1..30)) {
        let b = FrameBuilder::new(1400, 1, 2);
        let mut w = PcapWriter::new(Vec::new()).unwrap();
        for (i, &s) in seqs.iter().enumerate() {
            let f = b.build_tagged_snap(ChoirTag::new(0, 0, s));
            w.write_record(i as u64 * 285, &f).unwrap();
        }
        let buf = w.finish().unwrap();
        let parsed = parse_pcap(&buf).unwrap();
        for (rec, &s) in parsed.iter().zip(&seqs) {
            prop_assert_eq!(rec.frame.orig_len(), 1400);
            prop_assert_eq!(rec.frame.tag().unwrap().seq, s);
            // Identity equals the full-size build of the same tag.
            let full = b.build_tagged(ChoirTag::new(0, 0, s));
            prop_assert_eq!(rec.frame.packet_id(), full.packet_id());
        }
    }
}

#[test]
fn recorder_capture_to_pcap_to_trial_is_lossless() {
    // Drive the recorder app, export pcap, re-import as a Trial; the
    // metric comparison between original and re-imported must be perfect
    // (modulo pcap's nanosecond resolution, which our timestamps already
    // honour).
    struct Feed {
        pool: Mempool,
        queued: std::collections::VecDeque<choir::dpdk::Mbuf>,
    }
    impl Dataplane for Feed {
        fn num_ports(&self) -> usize {
            1
        }
        fn mempool(&self) -> &Mempool {
            &self.pool
        }
        fn rx_burst(&mut self, _p: PortId, out: &mut Burst) -> usize {
            out.clear();
            let mut n = 0;
            while n < choir::dpdk::MAX_BURST {
                match self.queued.pop_front() {
                    Some(m) => {
                        out.push(m).unwrap();
                        n += 1;
                    }
                    None => break,
                }
            }
            n
        }
        fn tx_burst(&mut self, _p: PortId, _b: &mut Burst) -> usize {
            0
        }
        fn tsc(&self) -> u64 {
            0
        }
        fn tsc_hz(&self) -> u64 {
            1_000_000_000
        }
        fn wall_ns(&self) -> u64 {
            0
        }
        fn request_wake_at_tsc(&mut self, _t: u64) {}
        fn stats(&self, _p: PortId) -> PortStats {
            PortStats::default()
        }
    }

    let pool = Mempool::new("pcapio", 1 << 10);
    let builder = FrameBuilder::new(1400, 1, 2);
    let mut feed = Feed {
        pool: pool.clone(),
        queued: Default::default(),
    };
    for i in 0..500u64 {
        let mut m = pool
            .alloc(builder.build_tagged_snap(ChoirTag::new(0, 0, i)))
            .unwrap();
        m.rx_ts_ps = Some(i * 284_800 / 1_000 * 1_000); // ns-aligned ps
        feed.queued.push_back(m);
    }

    let mut rec = Recorder::new(RecorderConfig {
        keep_frames: true,
        ..RecorderConfig::default()
    });
    rec.on_wake(&mut feed);
    let original = rec.take_trials().pop().unwrap();

    let mut pcap = Vec::new();
    let written = rec.write_pcap(&mut pcap).unwrap();
    assert_eq!(written, 500);

    let reimported = Trial::from_pcap_records(&parse_pcap(&pcap).unwrap());
    assert_eq!(reimported.len(), original.len());
    let m = choir::metrics::compare(&original, &reimported);
    assert_eq!(m.kappa, 1.0, "pcap round trip must be lossless");
}
