//! `O` — variation in packet ordering (paper Eq. 2).
//!
//! The Longest Common Subsequence of two trials over *unique* packets is
//! the Longest Increasing Subsequence of A-positions taken in B order
//! (Schensted, as the paper cites), computable in O(n log n) by patience
//! sorting. Packets outside the LCS are the "moved" packets of the minimum
//! edit script transforming B into A; each contributes its move distance
//! `d_i`, and
//!
//! ```text
//! O_AB = Σ d_i / Σ_{n=0}^{|A∩B|} n
//! ```
//!
//! where the denominator (`m(m+1)/2`) is the paper's proven maximum — the
//! cost of reversing the sequence.
//!
//! Positions are *ranks within the common subset*: inconsistencies in
//! packet presence are U's job, so O "focuses just on inconsistencies in
//! the overlap" (§3).

use super::matching::Matching;
use super::stats::Summary;

/// Outcome of the ordering analysis.
#[derive(Debug, Clone)]
pub struct OrderingResult {
    /// The normalized ordering metric in `[0, 1]`.
    pub o: f64,
    /// Length of the LCS (packets that did not move).
    pub lcs_len: usize,
    /// Signed displacements (`a_rank − b_rank`) of every moved packet —
    /// the edit-script distances Table 1 summarizes.
    pub displacements: Vec<i64>,
}

impl OrderingResult {
    /// Number of packets in the edit script (moved packets).
    pub fn moved(&self) -> usize {
        self.displacements.len()
    }

    /// Table 1 statistics over the edit-script distances.
    pub fn stats(&self) -> EditScriptStats {
        EditScriptStats::from_displacements(&self.displacements)
    }
}

/// Statistics of edit-script move distances, as reported in the paper's
/// Table 1 ("Distances packets were moved in the edit scripts").
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EditScriptStats {
    /// Number of moved packets.
    pub count: usize,
    /// Mean signed distance.
    pub mean: f64,
    /// Standard deviation of signed distance.
    pub stddev: f64,
    /// Mean absolute distance.
    pub abs_mean: f64,
    /// Standard deviation of absolute distance.
    pub abs_stddev: f64,
    /// Minimum signed distance.
    pub min: i64,
    /// Maximum signed distance.
    pub max: i64,
}

impl EditScriptStats {
    /// Summarize a displacement list; all-zero stats for an empty one.
    pub fn from_displacements(d: &[i64]) -> Self {
        if d.is_empty() {
            return EditScriptStats {
                count: 0,
                mean: 0.0,
                stddev: 0.0,
                abs_mean: 0.0,
                abs_stddev: 0.0,
                min: 0,
                max: 0,
            };
        }
        let signed = Summary::of(d.iter().map(|&x| x as f64));
        let abs = Summary::of(d.iter().map(|&x| (x.abs()) as f64));
        EditScriptStats {
            count: d.len(),
            mean: signed.mean,
            stddev: signed.stddev,
            abs_mean: abs.mean,
            abs_stddev: abs.stddev,
            min: *d.iter().min().unwrap(),
            max: *d.iter().max().unwrap(),
        }
    }
}

/// Shared kernel behind [`ordering`] and
/// [`super::pair::PairAnalyzer`]. Also the exact finalizer of the
/// streaming engine ([`super::stream`]): it only reads `m.common()` and
/// the pairs' relative positions, so a synthetic [`Matching`] assembled
/// from streamed matches reproduces the batch result bit-for-bit.
pub(crate) fn ordering_core(m: &Matching) -> OrderingResult {
    let mc = m.common();
    if mc <= 1 {
        return OrderingResult {
            o: 0.0,
            lcs_len: mc,
            displacements: Vec::new(),
        };
    }

    // Rank the matched A-positions: pairs are in B order, so `seq[k]` is
    // the A-rank of the k-th common packet in B. The result is a
    // permutation of 0..mc.
    let mut order: Vec<u32> = (0..mc as u32).collect();
    order.sort_unstable_by_key(|&k| m.pairs[k as usize].a_idx);
    let mut seq = vec![0u32; mc];
    for (a_rank, &k) in order.iter().enumerate() {
        seq[k as usize] = a_rank as u32;
    }

    let in_lis = lis_membership(&seq);
    let lcs_len = in_lis.iter().filter(|&&b| b).count();

    let mut displacements = Vec::with_capacity(mc - lcs_len);
    let mut num: u128 = 0;
    for (b_rank, (&a_rank, &kept)) in seq.iter().zip(in_lis.iter()).enumerate() {
        if !kept {
            let d = a_rank as i64 - b_rank as i64;
            displacements.push(d);
            num += d.unsigned_abs() as u128;
        }
    }

    let denom = (mc as u128 * (mc as u128 + 1)) / 2;
    OrderingResult {
        o: num as f64 / denom as f64,
        lcs_len,
        displacements,
    }
}

// ---------------------------------------------------------------------
// Block kernel — shared between the streaming estimator
// (`super::stream`) and windowed analysis. A "block" is a run of matched
// (a_pos, b_pos) pairs; the kernel reads only their relative order, so
// the same code scores a whole run, a sealed window, or a snapshot
// slice.
// ---------------------------------------------------------------------

/// Dress a block of matched `(a_pos, b_pos)` pairs as a synthetic
/// [`Matching`] in B arrival order (`b_pos` is unique per stream, so the
/// sort is deterministic).
pub(crate) fn block_matching(pairs: &[(u32, u32)]) -> Matching {
    let mut sorted: Vec<(u32, u32)> = pairs.to_vec();
    sorted.sort_unstable_by_key(|p| p.1);
    Matching {
        a_len: sorted.len(),
        b_len: sorted.len(),
        pairs: sorted
            .into_iter()
            .map(|(a, b)| super::matching::MatchedPair {
                a_idx: a as usize,
                b_idx: b as usize,
            })
            .collect(),
    }
}

/// Exact edit script of one block (LIS kernel over the block's own
/// ranks). When the block is a *direct summand* of the global
/// permutation — every pair in it precedes every pair outside it in both
/// coordinates — local ranks differ from global ranks by a constant
/// offset in each coordinate, so the displacements (and hence the move
/// distance) are exactly the global ones.
pub(crate) fn block_ordering(pairs: &[(u32, u32)]) -> OrderingResult {
    ordering_core(&block_matching(pairs))
}

/// Total edit-script move distance of one block.
pub(crate) fn block_move_distance(pairs: &[(u32, u32)]) -> u128 {
    if pairs.len() <= 1 {
        return 0;
    }
    block_ordering(pairs)
        .displacements
        .iter()
        .map(|d| d.unsigned_abs() as u128)
        .sum()
}

/// Largest prefix cut `c` (over `sorted`, which must be ascending in
/// `b_pos`) at which the block splits into a direct sum: every pair
/// before the cut precedes every pair at/after it in **both**
/// coordinates, no pending A observation (`min_pend_a`) can later match
/// below the cut's A horizon, and no pending B observation
/// (`min_pend_b`) can later land below the cut's B horizon. Future
/// (not-yet-pushed) observations always take larger positions than
/// anything buffered, so these two floors are the only external hazard.
pub(crate) fn direct_sum_cut(
    sorted: &[(u32, u32)],
    min_pend_a: u32,
    min_pend_b: u32,
) -> Option<usize> {
    let n = sorted.len();
    if n == 0 {
        return None;
    }
    // suffix_min_a[i] = min a_pos over sorted[i..]; [n] = +inf.
    let mut suffix_min_a = vec![u32::MAX; n + 1];
    for i in (0..n).rev() {
        suffix_min_a[i] = suffix_min_a[i + 1].min(sorted[i].0);
    }
    let mut best = None;
    let mut prefix_max_a = 0u32;
    for c in 1..=n {
        prefix_max_a = prefix_max_a.max(sorted[c - 1].0);
        if prefix_max_a < suffix_min_a[c]
            && prefix_max_a < min_pend_a
            && sorted[c - 1].1 < min_pend_b
        {
            best = Some(c);
        }
    }
    best
}

/// The A-side horizons of a cut: `(prefix_max_a, cut_b)` — the largest
/// A position committed below the cut and the B position the cut seals
/// at. Callers use these to count pending observations that could still
/// land inside the sealed prefix.
pub(crate) fn cut_horizons(sorted: &[(u32, u32)], c: usize) -> (u32, u32) {
    debug_assert!(c >= 1 && c <= sorted.len());
    let prefix_max_a = sorted[..c].iter().map(|p| p.0).max().unwrap_or(0);
    (prefix_max_a, sorted[c - 1].1)
}

/// Number of elements whose removal would make the cut `c` a direct-sum
/// boundary (an upper bound on the true minimum): prefix pairs reaching
/// above the suffix/pending A horizon, suffix pairs reaching below the
/// prefix A horizon, plus the caller-counted pending observations on
/// either side that could still land inside the prefix
/// (`pend_a_below` = pending A observations with position below
/// `prefix_max_a`, `pend_b_below` = pending B observations below
/// `cut_b`). Used to price a *forced* seal.
pub(crate) fn crossing_count(
    sorted: &[(u32, u32)],
    c: usize,
    min_pend_a: u32,
    pend_a_below: u64,
    pend_b_below: u64,
) -> u64 {
    let n = sorted.len();
    debug_assert!(c >= 1 && c <= n);
    let prefix_max_a = sorted[..c].iter().map(|p| p.0).max().unwrap_or(0);
    let suffix_min_a = sorted[c..].iter().map(|p| p.0).min().unwrap_or(u32::MAX);
    let a_floor = suffix_min_a.min(min_pend_a);
    let k_prefix = sorted[..c].iter().filter(|p| p.0 > a_floor).count() as u64;
    let k_suffix = sorted[c..].iter().filter(|p| p.0 < prefix_max_a).count() as u64;
    k_prefix + k_suffix + pend_a_below + pend_b_below
}

/// Reusable workspace for [`ordering_arena`]: the rank keys, the rank
/// permutation, the Fenwick tree, the traceback parents, and the
/// membership mask. Cleared and resized per pair, so a worker analyzing
/// thousands of pairs allocates these once at steady state.
#[derive(Debug, Default)]
pub struct OrderScratch {
    keys: Vec<u64>,
    seq: Vec<u32>,
    tree: Vec<(u32, u64, u32)>,
    parent: Vec<u32>,
    member: Vec<bool>,
}

/// Scratch-backed ordering kernel — bit-identical to [`ordering_core`].
///
/// Two mechanical changes, no arithmetic ones: (1) the A-rank sort runs
/// over packed `(a_idx << 32) | b_rank` keys in one flat `u64` sort —
/// `a_idx` is unique within a matching, so the composite order equals the
/// reference's sort-by-`a_idx`; (2) the Fenwick tree, parents, and
/// membership mask live in the caller's [`OrderScratch`] instead of fresh
/// allocations, with the tuple index narrowed to `u32` (valid since
/// `mc ≤ u32::MAX`; the index never participates in a comparison). The
/// query/update/best tie-break rules are copied verbatim from
/// `lis_membership`, so the selected subsequence — not just its length —
/// is identical.
pub(crate) fn ordering_arena(m: &Matching, s: &mut OrderScratch) -> OrderingResult {
    let mc = m.common();
    if mc <= 1 {
        return OrderingResult {
            o: 0.0,
            lcs_len: mc,
            displacements: Vec::new(),
        };
    }
    let OrderScratch { keys, seq, tree, parent, member } = s;

    keys.clear();
    keys.reserve(mc);
    for (k, p) in m.pairs.iter().enumerate() {
        keys.push(((p.a_idx as u64) << 32) | k as u64);
    }
    keys.sort_unstable();
    seq.clear();
    seq.resize(mc, 0);
    for (a_rank, &key) in keys.iter().enumerate() {
        seq[(key & 0xFFFF_FFFF) as usize] = a_rank as u32;
    }

    const EMPTY: (u32, u64, u32) = (0, 0, u32::MAX);
    tree.clear();
    tree.resize(mc + 1, EMPTY);
    parent.clear();
    parent.resize(mc, u32::MAX);
    member.clear();
    member.resize(mc, false);

    let mut best = EMPTY;
    for (i, &v) in seq.iter().enumerate() {
        let w = (v as i64 - i as i64).unsigned_abs();
        let mut pred = EMPTY;
        let mut t = v as usize;
        while t > 0 {
            if tree[t].0 > pred.0 || (tree[t].0 == pred.0 && tree[t].1 > pred.1) {
                pred = tree[t];
            }
            t &= t - 1;
        }
        let len = pred.0 + 1;
        let weight = pred.1 + w;
        parent[i] = pred.2;
        let val = (len, weight, i as u32);
        let mut t = v as usize + 1;
        while t <= mc {
            if val.0 > tree[t].0 || (val.0 == tree[t].0 && val.1 > tree[t].1) {
                tree[t] = val;
            }
            t += t & t.wrapping_neg();
        }
        if len > best.0 || (len == best.0 && weight > best.1) {
            best = val;
        }
    }

    let mut cur = best.2;
    while cur != u32::MAX {
        member[cur as usize] = true;
        cur = parent[cur as usize];
    }
    let lcs_len = member.iter().filter(|&&b| b).count();
    debug_assert_eq!(lcs_len as u32, best.0, "traceback length mismatch");

    let mut displacements = Vec::with_capacity(mc - lcs_len);
    let mut num: u128 = 0;
    for (b_rank, (&a_rank, &kept)) in seq.iter().zip(member.iter()).enumerate() {
        if !kept {
            let d = a_rank as i64 - b_rank as i64;
            displacements.push(d);
            num += d.unsigned_abs() as u128;
        }
    }

    let denom = (mc as u128 * (mc as u128 + 1)) / 2;
    OrderingResult {
        o: num as f64 / denom as f64,
        lcs_len,
        displacements,
    }
}

/// Compute the ordering metric from a prebuilt matching.
#[deprecated(note = "use metrics::PairAnalyzer (see DESIGN.md §12)")]
pub fn ordering(m: &Matching) -> OrderingResult {
    ordering_core(m)
}

/// Convenience: `O` straight from two trials.
#[deprecated(note = "use metrics::PairAnalyzer (see DESIGN.md §12)")]
pub fn ordering_of(a: &super::trial::Trial, b: &super::trial::Trial) -> OrderingResult {
    ordering_core(&Matching::build(a, b))
}

/// Membership mask of the *minimum-move-distance* maximal increasing
/// subsequence of a permutation.
///
/// Among all LISes of maximal length, this picks one whose members carry
/// the greatest total displacement `|seq[i] − i|` — equivalently, whose
/// edit script moves the least total distance. Besides matching the
/// paper's "minimum edit script" reading, this makes the O metric exactly
/// symmetric (`O_AB = O_BA`): inverting the permutation maps increasing
/// subsequences to increasing subsequences and preserves per-element
/// displacement, so the optimal kept weight — and hence the moved-distance
/// sum — is identical in both directions.
///
/// O(n log n) via a Fenwick tree keyed on value, holding prefix maxima of
/// `(length, kept_weight, index)`.
fn lis_membership(seq: &[u32]) -> Vec<bool> {
    let n = seq.len();
    let mut member = vec![false; n];
    if n == 0 {
        return member;
    }

    // Fenwick tree over values 1..=n with lexicographic-max merge of
    // (len, weight, idx). idx carries the chain head for traceback.
    const EMPTY: (u32, u64, usize) = (0, 0, usize::MAX);
    let mut tree = vec![EMPTY; n + 1];
    let query = |tree: &[(u32, u64, usize)], mut i: usize| {
        let mut best = EMPTY;
        while i > 0 {
            if tree[i].0 > best.0 || (tree[i].0 == best.0 && tree[i].1 > best.1) {
                best = tree[i];
            }
            i &= i - 1;
        }
        best
    };
    let update = |tree: &mut [(u32, u64, usize)], mut i: usize, val: (u32, u64, usize)| {
        while i <= n {
            if val.0 > tree[i].0 || (val.0 == tree[i].0 && val.1 > tree[i].1) {
                tree[i] = val;
            }
            i += i & i.wrapping_neg();
        }
    };

    let mut parent = vec![usize::MAX; n];
    let mut best = EMPTY;
    for (i, &v) in seq.iter().enumerate() {
        let w = (v as i64 - i as i64).unsigned_abs();
        let pred = query(&tree, v as usize); // prefix over values < v
        let len = pred.0 + 1;
        let weight = pred.1 + w;
        parent[i] = pred.2;
        update(&mut tree, v as usize + 1, (len, weight, i));
        if len > best.0 || (len == best.0 && weight > best.1) {
            best = (len, weight, i);
        }
    }

    let mut cur = best.2;
    while cur != usize::MAX {
        member[cur] = true;
        cur = parent[cur];
    }
    debug_assert_eq!(
        member.iter().filter(|&&b| b).count() as u32,
        best.0,
        "traceback length mismatch"
    );
    member
}

#[cfg(test)]
#[allow(deprecated)] // the shims must keep working until callers migrate
mod tests {
    use super::*;
    use crate::metrics::trial::Trial;

    fn trial(seqs: &[u64]) -> Trial {
        let mut t = Trial::new();
        for (i, &s) in seqs.iter().enumerate() {
            t.push_tagged(0, 0, s, i as u64 * 100);
        }
        t
    }

    /// O(n^2) reference LIS length.
    fn lis_len_reference(seq: &[u32]) -> usize {
        if seq.is_empty() {
            return 0;
        }
        let mut best = vec![1usize; seq.len()];
        for i in 1..seq.len() {
            for j in 0..i {
                if seq[j] < seq[i] {
                    best[i] = best[i].max(best[j] + 1);
                }
            }
        }
        *best.iter().max().unwrap()
    }

    #[test]
    fn identical_order_zero() {
        let a = trial(&[0, 1, 2, 3, 4]);
        let r = ordering_of(&a, &a.clone());
        assert_eq!(r.o, 0.0);
        assert_eq!(r.lcs_len, 5);
        assert!(r.displacements.is_empty());
    }

    #[test]
    fn single_swap() {
        let a = trial(&[0, 1, 2, 3]);
        let b = trial(&[0, 2, 1, 3]);
        let r = ordering_of(&a, &b);
        // LIS keeps 3 of 4; one packet moved distance 1.
        assert_eq!(r.lcs_len, 3);
        assert_eq!(r.moved(), 1);
        assert_eq!(r.displacements[0].abs(), 1);
        let denom = 4.0 * 5.0 / 2.0;
        assert!((r.o - 1.0 / denom).abs() < 1e-12);
    }

    #[test]
    fn reversal_is_near_max() {
        let n = 100u64;
        let a = trial(&(0..n).collect::<Vec<_>>());
        let fwd: Vec<u64> = (0..n).collect();
        let rev: Vec<u64> = fwd.iter().rev().copied().collect();
        let b = trial(&rev);
        let r = ordering_of(&a, &b);
        assert_eq!(r.lcs_len, 1);
        // Reversal cost: sum |2i - (n-1)| = n^2/2 for even n, minus the
        // one LIS-kept element's displacement (n-1); normalizer n(n+1)/2 —
        // so O is close to, but below, 1.
        let expected = (n * n / 2 - (n - 1)) as f64 / ((n * (n + 1)) / 2) as f64;
        assert!((r.o - expected).abs() < 1e-12, "got {}", r.o);
        assert!(r.o <= 1.0);
        assert!(r.o > 0.9);
    }

    #[test]
    fn extra_packets_in_b_do_not_inflate_o() {
        // B carries 3 leading packets unknown to A; the common packets are
        // in identical order, so O must be 0 (that inconsistency is U's).
        let a = trial(&[10, 11, 12, 13]);
        let b = trial(&[90, 91, 92, 10, 11, 12, 13]);
        let r = ordering_of(&a, &b);
        assert_eq!(r.o, 0.0);
        assert_eq!(r.lcs_len, 4);
    }

    #[test]
    fn burst_interleave_moves_whole_bursts() {
        // Dual-replayer §6.2 shape: A = r0 burst then r1 burst; in B the
        // bursts swap. Packets move as whole blocks of equal distance.
        let a = trial(&[0, 1, 2, 3, 100, 101, 102, 103]);
        let b = trial(&[100, 101, 102, 103, 0, 1, 2, 3]);
        let r = ordering_of(&a, &b);
        assert_eq!(r.moved(), 4);
        // All moved packets share the same |distance| = 4.
        assert!(r.displacements.iter().all(|d| d.abs() == 4));
    }

    #[test]
    fn symmetric_in_o_value() {
        let a = trial(&[0, 1, 2, 3, 4, 5]);
        let b = trial(&[2, 0, 5, 1, 4, 3]);
        let rab = ordering_of(&a, &b);
        let rba = ordering_of(&b, &a);
        assert!((rab.o - rba.o).abs() < 1e-12);
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(ordering_of(&Trial::new(), &Trial::new()).o, 0.0);
        let one = trial(&[5]);
        assert_eq!(ordering_of(&one, &one.clone()).o, 0.0);
        let two_a = trial(&[1, 2]);
        let two_b = trial(&[2, 1]);
        let r = ordering_of(&two_a, &two_b);
        assert!(r.o > 0.0);
    }

    #[test]
    fn lis_membership_matches_reference_lengths() {
        let cases: Vec<Vec<u32>> = vec![
            vec![],
            vec![0],
            vec![1, 0],
            vec![0, 1, 2, 3],
            vec![3, 2, 1, 0],
            vec![2, 0, 1, 4, 3],
            vec![5, 0, 3, 1, 4, 2, 6],
            vec![1, 3, 0, 2, 5, 4, 7, 6],
        ];
        for seq in cases {
            let member = lis_membership(&seq);
            let len = member.iter().filter(|&&b| b).count();
            assert_eq!(len, lis_len_reference(&seq), "seq {seq:?}");
            // Membership must actually be increasing.
            let kept: Vec<u32> = seq
                .iter()
                .zip(&member)
                .filter(|(_, &m)| m)
                .map(|(&v, _)| v)
                .collect();
            assert!(kept.windows(2).all(|w| w[0] < w[1]), "kept {kept:?}");
        }
    }

    #[test]
    fn edit_stats_empty() {
        let s = EditScriptStats::from_displacements(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.min, 0);
    }

    #[test]
    fn edit_stats_values() {
        let s = EditScriptStats::from_displacements(&[-2, 2, 4]);
        assert_eq!(s.count, 3);
        assert!((s.mean - 4.0 / 3.0).abs() < 1e-12);
        assert!((s.abs_mean - 8.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min, -2);
        assert_eq!(s.max, 4);
        assert!(s.stddev > 0.0);
    }

    #[test]
    fn o_bounded_by_one_for_adversarial_permutations() {
        // Several structured permutations; O must stay in [0, 1].
        let n = 64u64;
        let a: Vec<u64> = (0..n).collect();
        let perms: Vec<Vec<u64>> = vec![
            a.iter().rev().copied().collect(),
            // Interleave halves.
            (0..n / 2).flat_map(|i| [i, i + n / 2]).collect(),
            // Rotate by one.
            (1..n).chain(0..1).collect(),
        ];
        let ta = trial(&a);
        for p in perms {
            let r = ordering_of(&ta, &trial(&p));
            assert!(r.o >= 0.0 && r.o <= 1.0, "O={} for {p:?}", r.o);
        }
    }
}
