//! A tour of the κ metric on hand-built scenarios: what each component
//! (U, O, L, I) sees, what the paper's worked examples produce, and how
//! the future-work extensions (weights, non-linear scalings, the
//! reordering-vs-spacing profile) change the verdict.
//!
//! ```text
//! cargo run --example metric_playground
//! ```

use choir::metrics::matching::Matching;
use choir::metrics::reorder::reorder_profile;
use choir::metrics::{compare, KappaConfig, Scaling, Trial};

fn cbr(n: u64, gap: u64) -> Trial {
    let mut t = Trial::new();
    for i in 0..n {
        t.push_tagged(0, 0, i, i * gap);
    }
    t
}

fn main() {
    println!("== kappa metric playground ==\n");
    let gap = 284_800u64; // 40 Gbps of 1400-byte frames, in ps
    let a = cbr(10_000, gap);

    // 1. A perfect replay.
    let m = compare(&a, &a.clone());
    println!("identical replay:              kappa = {:.4}", m.kappa);

    // 2. The paper's Eq. 1 worked example: one drop out of ten.
    let ten = cbr(10, gap);
    let mut nine = Trial::new();
    for i in 0..9 {
        nine.push_tagged(0, 0, i, i * gap);
    }
    let m = compare(&ten, &nine);
    println!(
        "paper's 1-of-10 drop example:  U = {:.6} (= 1/19 = {:.6})",
        m.u,
        1.0 / 19.0
    );

    // 3. Jitter only: every packet 0-20 ns off.
    let mut jittery = Trial::new();
    for i in 0..10_000u64 {
        jittery.push_tagged(0, 0, i, i * gap + (i % 21) * 1_000);
    }
    let m = compare(&a, &jittery);
    println!(
        "+-20 ns jitter:                I = {:.4}, L = {:.2e}, kappa = {:.4}",
        m.i, m.l, m.kappa
    );

    // 4. A burst swap (the dual-replayer signature).
    let mut swapped = Trial::new();
    for i in 0..10_000u64 {
        let seq = match i {
            5_000..=5_063 => i + 64, // burst displaced...
            5_064..=5_127 => i - 64, // ...with its neighbour
            _ => i,
        };
        swapped.push_tagged(0, 0, seq, i * gap);
    }
    let m = compare(&a, &swapped);
    println!(
        "two 64-packet bursts swapped:  O = {:.2e}, kappa = {:.4}",
        m.o, m.kappa
    );

    // 5. Where does the reordering live? The Bellardo-Savage-style
    //    profile shows inversions concentrated at burst-size spacings.
    let prof = reorder_profile(&Matching::build(&a, &swapped), 200);
    let peak = (1..=200)
        .max_by(|&x, &y| {
            prof.at(x)
                .unwrap()
                .partial_cmp(&prof.at(y).unwrap())
                .unwrap()
        })
        .unwrap();
    println!(
        "reordering profile:            peak inversion probability at spacing {} (burst size 64)",
        peak
    );

    // 6. Extensions: drop-sensitive and balanced-timing kappa variants.
    println!("\n== future-work extensions (paper SS8.2/SS10) ==");
    let rare_drop = {
        let mut t = Trial::new();
        for i in 0..10_000u64 {
            if i != 7_777 {
                t.push_tagged(0, 0, i, i * gap);
            }
        }
        t
    };
    let linear = compare(&a, &rare_drop);
    let strict = {
        let u = choir::metrics::PairAnalyzer::new(&a, &rare_drop).metrics().u;
        KappaConfig::drop_sensitive().combine(u, 0.0, 0.0, 0.0)
    };
    println!(
        "one drop in 10k packets:       paper kappa = {:.5}, drop-sensitive kappa = {:.4}",
        linear.kappa, strict.kappa
    );

    let unbalanced = KappaConfig::paper().combine(0.0, 0.0, 1e-5, 0.1);
    let balanced = KappaConfig {
        s_l: Scaling::Sqrt,
        s_i: Scaling::Sqrt,
        ..KappaConfig::paper()
    }
    .combine(0.0, 0.0, 1e-5, 0.1);
    println!(
        "I=0.1 vs L=1e-5 imbalance:     linear kappa = {:.4}, sqrt-scaled kappa = {:.4}",
        unbalanced.kappa, balanced.kappa
    );
    println!("\n(the sqrt scaling stops I from drowning out L, SS8.2's concern)");
}
