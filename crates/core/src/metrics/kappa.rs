//! κ — the compound consistency score (paper Eq. 5) and its configurable
//! extensions.
//!
//! The four normalized metrics form a vector `v = ⟨U, O, L, I⟩ ∈ R⁴` whose
//! magnitude lies in `[0, 2]`; the paper scales this to
//!
//! ```text
//! κ_AB = 1 − |v| / 2
//! ```
//!
//! with 1 = complete consistency. §8.2 and §10 note that linear components
//! let a large `I` "overpower" a tiny `L`, and that drops or reordering
//! might deserve non-linear emphasis; they leave weightings and non-linear
//! scalings to future work. [`KappaConfig`] implements that future work:
//! per-component weights and the scaling families the paper suggests
//! (square-root and presence emphasis among them).

use serde::{Deserialize, Serialize};

/// All four component metrics plus the compound score for one comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsistencyMetrics {
    /// Uniqueness variation (Eq. 1).
    pub u: f64,
    /// Ordering variation (Eq. 2).
    pub o: f64,
    /// Latency variation (Eq. 3).
    pub l: f64,
    /// IAT variation (Eq. 4).
    pub i: f64,
    /// Compound score κ (Eq. 5), 1 = perfectly consistent.
    pub kappa: f64,
}

impl ConsistencyMetrics {
    /// The vector magnitude `|⟨U,O,L,I⟩|`.
    pub fn magnitude(&self) -> f64 {
        (self.u * self.u + self.o * self.o + self.l * self.l + self.i * self.i).sqrt()
    }

    /// Mean of several comparisons, component-wise — how Table 2 reports
    /// each environment. Returns `None` for an empty run set (e.g. a
    /// chaos sweep where every replay failed) instead of panicking.
    pub fn mean_of(runs: &[ConsistencyMetrics]) -> Option<ConsistencyMetrics> {
        if runs.is_empty() {
            return None;
        }
        let n = runs.len() as f64;
        let mut u = 0.0;
        let mut o = 0.0;
        let mut l = 0.0;
        let mut i = 0.0;
        let mut k = 0.0;
        for r in runs {
            u += r.u;
            o += r.o;
            l += r.l;
            i += r.i;
            k += r.kappa;
        }
        Some(ConsistencyMetrics {
            u: u / n,
            o: o / n,
            l: l / n,
            i: i / n,
            kappa: k / n,
        })
    }
}

/// Build the compound metrics from the four components using the paper's
/// default (unweighted, linear) formula.
pub fn kappa_from_components(u: f64, o: f64, l: f64, i: f64) -> ConsistencyMetrics {
    KappaConfig::paper().combine(u, o, l, i)
}

/// A rigorous interval `[lo, hi]` guaranteed to contain the κ the batch
/// pipeline would report on the same observations. Exact computations
/// collapse it to a point (`lo == hi`); bounded-lookahead estimators
/// widen it by their accounted error (see `metrics::stream`'s
/// error-bound ladder). Because [`KappaConfig::combine`] is monotone
/// non-increasing in every component, component-wise intervals map
/// directly to a κ interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KappaBounds {
    /// Inclusive lower bound on the batch κ.
    pub lo: f64,
    /// Inclusive upper bound on the batch κ.
    pub hi: f64,
}

impl KappaBounds {
    /// A collapsed (exact) bound.
    pub fn exact(kappa: f64) -> Self {
        KappaBounds { lo: kappa, hi: kappa }
    }

    /// Width of the interval — the estimator's error budget.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Does the interval contain `kappa` (inclusive)?
    pub fn contains(&self, kappa: f64) -> bool {
        self.lo <= kappa && kappa <= self.hi
    }
}

/// Non-linear scaling families for a component (paper §8.2/§10 future
/// work).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scaling {
    /// Identity: the paper's published formula.
    Linear,
    /// `sqrt(x)` — amplifies small inconsistencies (a metric of 0.01 scores
    /// 0.1), addressing "L varies within 1e−5 while I varies within 1e−1".
    Sqrt,
    /// `x^p` for arbitrary `p > 0` (p < 1 amplifies small values, p > 1
    /// suppresses them).
    Power(f64),
    /// Presence emphasis: 0 stays 0, any positive value scores at least
    /// `floor` — "non-linear scalings that would make the presence of any
    /// drops more heavily impact the score" (§8.2).
    Presence {
        /// Minimum score assigned to any non-zero input.
        floor: f64,
    },
}

impl Scaling {
    /// Apply the scaling to a normalized metric value.
    pub fn apply(&self, x: f64) -> f64 {
        debug_assert!((0.0..=1.0).contains(&x), "metric out of range: {x}");
        match *self {
            Scaling::Linear => x,
            Scaling::Sqrt => x.sqrt(),
            Scaling::Power(p) => x.powf(p),
            Scaling::Presence { floor } => {
                if x > 0.0 {
                    x.max(floor)
                } else {
                    0.0
                }
            }
        }
    }
}

/// A κ variant: per-component weights and scalings.
///
/// κ is always normalized so that all-components-at-1 yields 0 and
/// all-at-0 yields 1, whatever the weights.
///
/// ```
/// use choir_core::metrics::KappaConfig;
///
/// // The published formula...
/// let paper = KappaConfig::paper().combine(0.0, 0.0, 2.62e-6, 0.0290);
/// assert!((paper.kappa - 0.9855).abs() < 1e-4);
/// // ...and a drop-sensitive variant (§8.2's suggested refinement).
/// let strict = KappaConfig::drop_sensitive().combine(1.1e-4, 0.0, 0.0, 0.0);
/// assert!(strict.kappa < 0.88);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KappaConfig {
    /// Weight of `U`.
    pub w_u: f64,
    /// Weight of `O`.
    pub w_o: f64,
    /// Weight of `L`.
    pub w_l: f64,
    /// Weight of `I`.
    pub w_i: f64,
    /// Scaling applied to `U`.
    pub s_u: Scaling,
    /// Scaling applied to `O`.
    pub s_o: Scaling,
    /// Scaling applied to `L`.
    pub s_l: Scaling,
    /// Scaling applied to `I`.
    pub s_i: Scaling,
}

impl KappaConfig {
    /// The paper's published formula: unit weights, linear scalings.
    pub fn paper() -> Self {
        KappaConfig {
            w_u: 1.0,
            w_o: 1.0,
            w_l: 1.0,
            w_i: 1.0,
            s_u: Scaling::Linear,
            s_o: Scaling::Linear,
            s_l: Scaling::Linear,
            s_i: Scaling::Linear,
        }
    }

    /// A drop-sensitive variant: any missing packet costs at least 0.25 on
    /// the U axis (one of the paper's suggested refinements).
    pub fn drop_sensitive() -> Self {
        KappaConfig {
            s_u: Scaling::Presence { floor: 0.25 },
            ..Self::paper()
        }
    }

    /// A variant that square-roots L and I so microsecond-scale jitter is
    /// not drowned out by IAT deviation (§8.2's observed imbalance).
    pub fn balanced_timing() -> Self {
        KappaConfig {
            s_l: Scaling::Sqrt,
            s_i: Scaling::Sqrt,
            ..Self::paper()
        }
    }

    /// Combine components under this configuration.
    ///
    /// # Panics
    /// Panics if all weights are zero or any weight is negative.
    pub fn combine(&self, u: f64, o: f64, l: f64, i: f64) -> ConsistencyMetrics {
        assert!(
            self.w_u >= 0.0 && self.w_o >= 0.0 && self.w_l >= 0.0 && self.w_i >= 0.0,
            "negative weight"
        );
        let norm =
            (self.w_u * self.w_u + self.w_o * self.w_o + self.w_l * self.w_l + self.w_i * self.w_i)
                .sqrt();
        assert!(norm > 0.0, "all weights zero");
        let su = self.w_u * self.s_u.apply(u);
        let so = self.w_o * self.s_o.apply(o);
        let sl = self.w_l * self.s_l.apply(l);
        let si = self.w_i * self.s_i.apply(i);
        let mag = (su * su + so * so + sl * sl + si * si).sqrt();
        ConsistencyMetrics {
            u,
            o,
            l,
            i,
            kappa: 1.0 - mag / norm,
        }
    }
}

impl Default for KappaConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_formula_extremes() {
        let perfect = kappa_from_components(0.0, 0.0, 0.0, 0.0);
        assert_eq!(perfect.kappa, 1.0);
        let worst = kappa_from_components(1.0, 1.0, 1.0, 1.0);
        assert!((worst.kappa - 0.0).abs() < 1e-12);
    }

    #[test]
    fn paper_formula_matches_published_runs() {
        // §6.1 run B: U=O=0, I=0.0290, L=2.62e-6 -> kappa 0.9855.
        let m = kappa_from_components(0.0, 0.0, 2.62e-6, 0.0290);
        assert!((m.kappa - 0.9855).abs() < 1e-4, "got {}", m.kappa);
        // §7 third FABRIC test run B: I=0.514, L=4.49e-4 -> kappa 0.7431.
        let m2 = kappa_from_components(0.0, 0.0, 4.49e-4, 0.514);
        assert!((m2.kappa - 0.7431).abs() < 1e-3, "got {}", m2.kappa);
        // §7 80 Gbps dedicated run C: I=0.106, L=3.83e-6 -> kappa 0.9469.
        let m3 = kappa_from_components(0.0, 0.0, 3.83e-6, 0.106);
        assert!((m3.kappa - 0.9469).abs() < 1e-3, "got {}", m3.kappa);
        // Note: a few of the paper's other published kappa values (the
        // first FABRIC dedicated test, the dual-replayer per-run list) are
        // not internally consistent with Eq. 5 applied to their own U/O/L/I
        // values; we pin only the self-consistent rows here.
    }

    #[test]
    fn magnitude_bounds() {
        let m = kappa_from_components(1.0, 1.0, 1.0, 1.0);
        assert!((m.magnitude() - 2.0).abs() < 1e-12);
        let m0 = kappa_from_components(0.0, 0.0, 0.0, 0.0);
        assert_eq!(m0.magnitude(), 0.0);
    }

    #[test]
    fn single_axis_value() {
        // Only I non-zero: kappa = 1 - I/2.
        let m = kappa_from_components(0.0, 0.0, 0.0, 0.5);
        assert!((m.kappa - 0.75).abs() < 1e-12);
    }

    #[test]
    fn mean_of_runs() {
        let runs = vec![
            kappa_from_components(0.0, 0.0, 0.0, 0.2),
            kappa_from_components(0.0, 0.0, 0.0, 0.4),
        ];
        let mean = ConsistencyMetrics::mean_of(&runs).unwrap();
        assert!((mean.i - 0.3).abs() < 1e-12);
        assert!((mean.kappa - (runs[0].kappa + runs[1].kappa) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_of_empty_is_none() {
        // Regression: this used to `assert!` and abort the caller.
        assert!(ConsistencyMetrics::mean_of(&[]).is_none());
    }

    #[test]
    fn weighted_kappa_still_normalized() {
        let cfg = KappaConfig {
            w_u: 4.0,
            w_o: 1.0,
            w_l: 0.5,
            w_i: 2.0,
            ..KappaConfig::paper()
        };
        assert_eq!(cfg.combine(0.0, 0.0, 0.0, 0.0).kappa, 1.0);
        assert!((cfg.combine(1.0, 1.0, 1.0, 1.0).kappa).abs() < 1e-12);
        // U dominates under these weights.
        let drop_heavy = cfg.combine(0.5, 0.0, 0.0, 0.0);
        let iat_heavy = cfg.combine(0.0, 0.0, 0.0, 0.5);
        assert!(drop_heavy.kappa < iat_heavy.kappa);
    }

    #[test]
    fn presence_scaling_punishes_any_drop() {
        let cfg = KappaConfig::drop_sensitive();
        // Paper §7.1: 238 drops in ~1.05M packets gave U=1.13e-4 with
        // negligible kappa impact. With presence scaling it now matters.
        let linear = KappaConfig::paper().combine(1.13e-4, 0.0, 0.0, 0.0);
        let scaled = cfg.combine(1.13e-4, 0.0, 0.0, 0.0);
        assert!(linear.kappa > 0.9999);
        assert!(scaled.kappa < 0.88);
        // Zero drops stays perfect.
        assert_eq!(cfg.combine(0.0, 0.0, 0.0, 0.0).kappa, 1.0);
    }

    #[test]
    fn sqrt_scaling_amplifies_small_latency() {
        let cfg = KappaConfig::balanced_timing();
        let linear = KappaConfig::paper().combine(0.0, 0.0, 1e-4, 0.0);
        let scaled = cfg.combine(0.0, 0.0, 1e-4, 0.0);
        assert!(scaled.kappa < linear.kappa);
    }

    #[test]
    fn power_scaling_identity_at_one() {
        for s in [Scaling::Linear, Scaling::Sqrt, Scaling::Power(2.0)] {
            assert!((s.apply(1.0) - 1.0).abs() < 1e-12);
            assert_eq!(s.apply(0.0), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "all weights zero")]
    fn zero_weights_panic() {
        let cfg = KappaConfig {
            w_u: 0.0,
            w_o: 0.0,
            w_l: 0.0,
            w_i: 0.0,
            ..KappaConfig::paper()
        };
        cfg.combine(0.1, 0.1, 0.1, 0.1);
    }

    #[test]
    fn serde_roundtrip() {
        let cfg = KappaConfig::drop_sensitive();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: KappaConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
