//! Trials: "a sequence of packets received by a receiver" (paper §3).
//!
//! Each observation is a packet identity plus its arrival time in
//! **picoseconds relative to the capture epoch**. Eq. 3/4 subtract times
//! across the two trials, which is only meaningful when both captures are
//! expressed relative to their own start; [`Trial::rezeroed`] provides
//! that, and the experiment pipeline applies it before comparing.

use choir_packet::ident::PacketId;
use choir_packet::pcap::PcapRecord;
use choir_packet::tag::ChoirTag;

/// One received packet: identity and arrival time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Observation {
    /// Packet identity (from the Choir trailer tag, or a content hash).
    pub id: PacketId,
    /// Arrival time in picoseconds since the capture epoch.
    pub t_ps: u64,
}

/// A captured sequence of packet arrivals, in arrival order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trial {
    obs: Vec<Observation>,
}

impl Trial {
    /// An empty trial.
    pub fn new() -> Self {
        Trial { obs: Vec::new() }
    }

    /// An empty trial with preallocated capacity.
    pub fn with_capacity(n: usize) -> Self {
        Trial {
            obs: Vec::with_capacity(n),
        }
    }

    /// Append an observation.
    pub fn push(&mut self, id: PacketId, t_ps: u64) {
        self.obs.push(Observation { id, t_ps });
    }

    /// Append an observation identified by Choir tag fields — convenient
    /// in tests and examples.
    pub fn push_tagged(&mut self, replayer: u16, stream: u16, seq: u64, t_ps: u64) {
        self.push(PacketId::from_tag(&ChoirTag::new(replayer, stream, seq)), t_ps);
    }

    /// Build a trial from nanosecond pcap records (times scaled to ps).
    pub fn from_pcap_records(records: &[PcapRecord]) -> Self {
        let mut t = Trial::with_capacity(records.len());
        for r in records {
            t.push(r.frame.packet_id(), r.ts_ns * 1000);
        }
        t
    }

    /// Number of packets in the trial (`|A|` in the paper's formulas).
    pub fn len(&self) -> usize {
        self.obs.len()
    }

    /// True when the trial holds no packets.
    pub fn is_empty(&self) -> bool {
        self.obs.is_empty()
    }

    /// The observations in arrival order.
    pub fn observations(&self) -> &[Observation] {
        &self.obs
    }

    /// Arrival time of the `i`th packet.
    pub fn time(&self, i: usize) -> u64 {
        self.obs[i].t_ps
    }

    /// Identity of the `i`th packet.
    pub fn id(&self, i: usize) -> PacketId {
        self.obs[i].id
    }

    /// Time of the first arrival (`t_X0`), or 0 for an empty trial.
    pub fn start_ps(&self) -> u64 {
        self.obs.first().map_or(0, |o| o.t_ps)
    }

    /// Time of the last arrival (`t_X|X|`), or 0 for an empty trial.
    pub fn end_ps(&self) -> u64 {
        self.obs.last().map_or(0, |o| o.t_ps)
    }

    /// Capture duration: last arrival minus first arrival.
    pub fn span_ps(&self) -> u64 {
        self.end_ps().saturating_sub(self.start_ps())
    }

    /// Robust duration: max timestamp minus min timestamp. Identical to
    /// [`Trial::span_ps`] for time-ordered captures; still a valid bound
    /// when hardware stamp noise inverted a few arrivals.
    pub fn minmax_span_ps(&self) -> u64 {
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for o in &self.obs {
            lo = lo.min(o.t_ps);
            hi = hi.max(o.t_ps);
        }
        if lo == u64::MAX {
            0
        } else {
            hi - lo
        }
    }

    /// True when arrival times never decrease (the physical case).
    pub fn is_time_ordered(&self) -> bool {
        self.obs.windows(2).all(|w| w[0].t_ps <= w[1].t_ps)
    }

    /// The same trial with times re-expressed relative to its first
    /// arrival (the form Eq. 3/4 assume).
    ///
    /// Hardware timestamp noise can stamp a later packet marginally
    /// *earlier* than the first packet; such stamps clamp to zero rather
    /// than wrapping (a few-ns clamp versus a 2⁶⁴ ps explosion).
    pub fn rezeroed(&self) -> Trial {
        let t0 = self.start_ps();
        Trial {
            obs: self
                .obs
                .iter()
                .map(|o| Observation {
                    id: o.id,
                    t_ps: o.t_ps.saturating_sub(t0),
                })
                .collect(),
        }
    }

    /// Inter-arrival gap preceding packet `i` (`g_Xi`); zero for the first
    /// packet, per the paper's base case `t_X0 = t_X(-1)`.
    pub fn gap_ps(&self, i: usize) -> i64 {
        if i == 0 {
            0
        } else {
            self.obs[i].t_ps as i64 - self.obs[i - 1].t_ps as i64
        }
    }

    /// The trial reversed (worst-case ordering input, used by tests and
    /// the Fig. 2/3 demonstrations).
    pub fn reversed(&self) -> Trial {
        let mut obs: Vec<Observation> = self.obs.iter().rev().copied().collect();
        // Keep times ascending: reattach original timestamps in order.
        for (i, o) in obs.iter_mut().enumerate() {
            o.t_ps = self.obs[i].t_ps;
        }
        Trial { obs }
    }
}

impl FromIterator<(PacketId, u64)> for Trial {
    fn from_iter<T: IntoIterator<Item = (PacketId, u64)>>(iter: T) -> Self {
        let mut t = Trial::new();
        for (id, ts) in iter {
            t.push(id, ts);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use choir_packet::pcap::PcapRecord;
    use choir_packet::Frame;

    fn tagged_trial(n: u64, gap: u64) -> Trial {
        let mut t = Trial::new();
        for i in 0..n {
            t.push_tagged(0, 0, i, i * gap);
        }
        t
    }

    #[test]
    fn basic_accessors() {
        let t = tagged_trial(5, 100);
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
        assert_eq!(t.start_ps(), 0);
        assert_eq!(t.end_ps(), 400);
        assert_eq!(t.span_ps(), 400);
        assert!(t.is_time_ordered());
    }

    #[test]
    fn empty_trial_edges() {
        let t = Trial::new();
        assert_eq!(t.start_ps(), 0);
        assert_eq!(t.end_ps(), 0);
        assert_eq!(t.span_ps(), 0);
        assert!(t.is_time_ordered());
        assert!(t.is_empty());
    }

    #[test]
    fn gap_base_case_is_zero() {
        let t = tagged_trial(3, 50);
        assert_eq!(t.gap_ps(0), 0);
        assert_eq!(t.gap_ps(1), 50);
        assert_eq!(t.gap_ps(2), 50);
    }

    #[test]
    fn rezeroed_shifts_to_origin() {
        let mut t = Trial::new();
        t.push_tagged(0, 0, 0, 1_000_000);
        t.push_tagged(0, 0, 1, 1_000_700);
        let z = t.rezeroed();
        assert_eq!(z.start_ps(), 0);
        assert_eq!(z.time(1), 700);
        assert_eq!(z.span_ps(), t.span_ps());
    }

    #[test]
    fn rezeroed_clamps_stamps_earlier_than_the_first() {
        // Timestamp noise can invert the first two stamps; the relative
        // time must clamp to zero, not wrap around u64.
        let mut t = Trial::new();
        t.push_tagged(0, 0, 0, 1_000_000);
        t.push_tagged(0, 0, 1, 999_800); // stamped 200 ps "before" pkt 0
        t.push_tagged(0, 0, 2, 1_000_500);
        let z = t.rezeroed();
        assert_eq!(z.time(0), 0);
        assert_eq!(z.time(1), 0, "clamped, not wrapped");
        assert_eq!(z.time(2), 500);
        assert!(z.end_ps() < 1_000_000, "no 2^64-scale artifacts");
    }

    #[test]
    fn reversed_keeps_timestamps_ascending() {
        let t = tagged_trial(4, 10);
        let r = t.reversed();
        assert!(r.is_time_ordered());
        assert_eq!(r.id(0), t.id(3));
        assert_eq!(r.id(3), t.id(0));
        assert_eq!(r.time(0), 0);
        assert_eq!(r.time(3), 30);
    }

    #[test]
    fn detects_time_disorder() {
        let mut t = Trial::new();
        t.push_tagged(0, 0, 0, 100);
        t.push_tagged(0, 0, 1, 50);
        assert!(!t.is_time_ordered());
        // minmax span covers the true extent; first/last span does not.
        assert_eq!(t.span_ps(), 0);
        assert_eq!(t.minmax_span_ps(), 50);
    }

    #[test]
    fn from_pcap_records_scales_to_ps() {
        let mut buf = vec![0u8; 64];
        choir_packet::ChoirTag::new(1, 0, 3).stamp_trailer(&mut buf);
        let rec = PcapRecord {
            ts_ns: 42,
            frame: Frame::new(Bytes::from(buf)),
        };
        let t = Trial::from_pcap_records(&[rec]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.time(0), 42_000);
        assert!(t.id(0).is_tagged());
    }

    #[test]
    fn from_iterator() {
        let t: Trial = (0..3u64)
            .map(|i| (PacketId::from_tag(&ChoirTag::new(0, 0, i)), i * 10))
            .collect();
        assert_eq!(t.len(), 3);
    }
}
