//! Offline stand-in for the `serde_json` crate.
//!
//! Provides `to_string`, `to_string_pretty`, and `from_str` over the
//! vendored serde [`Content`] tree. The emitted JSON matches upstream
//! serde_json's conventions for the shapes Choir serializes: struct →
//! object, `Vec`/tuple → array, `Option::None` → `null`, enum variants in
//! externally tagged form, non-finite floats → `null`.

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;

/// JSON serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serialize `value` to a 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {} of JSON input",
            p.pos
        )));
    }
    Ok(T::from_content(&content)?)
}

// --- writer ------------------------------------------------------------

fn write_content(out: &mut String, c: &Content, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => {
            if v.is_finite() {
                // `{:?}` keeps a decimal point / exponent so floats stay
                // floats on re-parse, like upstream serde_json.
                out.push_str(&format!("{v:?}"));
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_json_string(out, s),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {} of JSON input",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Content::Null)
                } else {
                    Err(self.bad_token())
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(self.bad_token())
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(self.bad_token())
                }
            }
            Some(b'"') => Ok(Content::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(self.bad_token()),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(self.bad_token()),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(self.bad_token()),
        }
    }

    fn bad_token(&self) -> Error {
        match self.peek() {
            Some(b) => Error::new(format!(
                "unexpected character `{}` at byte {} of JSON input",
                b as char, self.pos
            )),
            None => Error::new("unexpected end of JSON input"),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self.peek().ok_or_else(|| {
                Error::new("unterminated string in JSON input")
            })?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| {
                        Error::new("unterminated escape in JSON input")
                    })?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Surrogate pair handling for completeness.
                            if (0xD800..0xDC00).contains(&code) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate in JSON string"));
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::new("invalid surrogate pair in JSON string"));
                                }
                                let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(
                                    char::from_u32(c)
                                        .ok_or_else(|| Error::new("invalid unicode escape"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error::new("invalid unicode escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::new(format!(
                                "invalid escape `\\{}` in JSON string",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we just stepped over.
                    let start = self.pos - 1;
                    let rest = &self.bytes[start..];
                    let ch = std::str::from_utf8(&rest[..rest.len().min(4)])
                        .ok()
                        .and_then(|s| s.chars().next())
                        .or_else(|| {
                            (1..=rest.len().min(4))
                                .find_map(|n| std::str::from_utf8(&rest[..n]).ok())
                                .and_then(|s| s.chars().next())
                        })
                        .ok_or_else(|| Error::new("invalid UTF-8 in JSON string"))?;
                    self.pos = start + ch.len_utf8();
                    out.push(ch);
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape in JSON string"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape in JSON string"))?;
        let v = u32::from_str_radix(s, 16)
            .map_err(|_| Error::new("invalid \\u escape in JSON string"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}` in JSON input")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Inner {
        label: String,
        weights: Vec<f64>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Outer {
        id: u64,
        delta: i64,
        triple: (f64, f64, f64),
        inner: Inner,
        maybe: Option<u32>,
        flags: Vec<bool>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Shape {
        Point,
        Circle(f64),
        Rect(f64, f64),
        Label { text: String, size: u32 },
        Nested(Vec<(f64, Shape)>),
    }

    fn sample() -> Outer {
        Outer {
            id: 42,
            delta: -3,
            triple: (0.5, 1.25, 99.0),
            inner: Inner {
                label: "p50 \"quoted\"\nline".to_string(),
                weights: vec![0.1, 0.9],
            },
            maybe: None,
            flags: vec![true, false],
        }
    }

    #[test]
    fn struct_round_trip_compact_and_pretty() {
        let v = sample();
        let compact = to_string(&v).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str::<Outer>(&compact).unwrap(), v);
        assert_eq!(from_str::<Outer>(&pretty).unwrap(), v);
        assert!(compact.contains("\"id\":42"));
        assert!(pretty.contains("\n  \"id\": 42"));
    }

    #[test]
    fn enum_round_trip_all_variant_shapes() {
        let shapes = vec![
            Shape::Point,
            Shape::Circle(2.5),
            Shape::Rect(1.0, 2.0),
            Shape::Label { text: "hi".into(), size: 9 },
            Shape::Nested(vec![(0.5, Shape::Point)]),
        ];
        let json = to_string(&shapes).unwrap();
        assert!(json.contains("\"Point\""));
        assert!(json.contains("{\"Circle\":2.5}"));
        assert!(json.contains("{\"Rect\":[1.0,2.0]}"));
        assert!(json.contains("{\"Label\":{\"text\":\"hi\",\"size\":9}}"));
        assert_eq!(from_str::<Vec<Shape>>(&json).unwrap(), shapes);
    }

    #[test]
    fn parses_whitespace_escapes_and_numbers() {
        let v: Outer = from_str(
            r#" {
              "id": 7, "delta": -2.0,
              "triple": [1e0, 2.5, -0.5],
              "inner": {"label": "a\tbA", "weights": []},
              "maybe": 3,
              "flags": []
            } "#,
        )
        .unwrap();
        assert_eq!(v.id, 7);
        assert_eq!(v.delta, -2);
        assert_eq!(v.triple.0, 1.0);
        assert_eq!(v.inner.label, "a\tbA");
        assert_eq!(v.maybe, Some(3));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Outer>("{\"id\":1").is_err());
        assert!(from_str::<Vec<u64>>("[1,2,").is_err());
        assert!(from_str::<String>("\"open").is_err());
        assert!(from_str::<u64>("nulz").is_err());
        assert!(from_str::<Shape>("{\"NoSuch\":1}").is_err());
    }

    #[test]
    fn non_finite_floats_serialize_as_null_and_parse_as_nan() {
        let json = to_string(&vec![f64::NAN, 1.0]).unwrap();
        assert_eq!(json, "[null,1.0]");
        let back: Vec<f64> = from_str(&json).unwrap();
        assert!(back[0].is_nan());
        assert_eq!(back[1], 1.0);
    }
}
