//! Per-port counters, mirroring `rte_eth_stats`.

/// Counters for one port. All counts are cumulative since port creation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortStats {
    /// Packets received by the application.
    pub rx_packets: u64,
    /// Bytes received by the application.
    pub rx_bytes: u64,
    /// Packets the NIC dropped on receive (ring full).
    pub rx_dropped: u64,
    /// Packets handed to the NIC for transmission.
    pub tx_packets: u64,
    /// Bytes handed to the NIC for transmission.
    pub tx_bytes: u64,
    /// Packets rejected at transmit (descriptor ring full).
    pub tx_dropped: u64,
}

impl PortStats {
    /// Record `n` packets / `bytes` received.
    pub fn on_rx(&mut self, n: u64, bytes: u64) {
        self.rx_packets += n;
        self.rx_bytes += bytes;
    }

    /// Record `n` packets / `bytes` transmitted.
    pub fn on_tx(&mut self, n: u64, bytes: u64) {
        self.tx_packets += n;
        self.tx_bytes += bytes;
    }

    /// Record `n` receive-side drops.
    pub fn on_rx_drop(&mut self, n: u64) {
        self.rx_dropped += n;
    }

    /// Record `n` transmit-side drops.
    pub fn on_tx_drop(&mut self, n: u64) {
        self.tx_dropped += n;
    }

    /// Sum of this and `other`, for aggregating across ports.
    pub fn merged(&self, other: &PortStats) -> PortStats {
        PortStats {
            rx_packets: self.rx_packets + other.rx_packets,
            rx_bytes: self.rx_bytes + other.rx_bytes,
            rx_dropped: self.rx_dropped + other.rx_dropped,
            tx_packets: self.tx_packets + other.tx_packets,
            tx_bytes: self.tx_bytes + other.tx_bytes,
            tx_dropped: self.tx_dropped + other.tx_dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut s = PortStats::default();
        s.on_rx(3, 300);
        s.on_rx(1, 100);
        s.on_tx(2, 200);
        s.on_rx_drop(1);
        s.on_tx_drop(4);
        assert_eq!(s.rx_packets, 4);
        assert_eq!(s.rx_bytes, 400);
        assert_eq!(s.tx_packets, 2);
        assert_eq!(s.tx_bytes, 200);
        assert_eq!(s.rx_dropped, 1);
        assert_eq!(s.tx_dropped, 4);
    }

    #[test]
    fn merge_adds_fieldwise() {
        let mut a = PortStats::default();
        a.on_rx(1, 10);
        let mut b = PortStats::default();
        b.on_tx(2, 20);
        let m = a.merged(&b);
        assert_eq!(m.rx_packets, 1);
        assert_eq!(m.tx_packets, 2);
        assert_eq!(m.rx_bytes, 10);
        assert_eq!(m.tx_bytes, 20);
    }
}
