//! Windowed consistency analysis — *where in time* did two runs diverge?
//!
//! κ is a single number per run pair; when it drops, the next question is
//! whether the inconsistency is uniform (clock wander), concentrated in a
//! burst (a scheduler pause, a noise microburst), or grows over the run
//! (queue buildup). [`windowed_kappa`] splits the common packets into
//! equal-population windows by baseline position and scores each window
//! independently, turning κ into a time series. This is a natural
//! companion to the paper's debugging use case ("non-deterministic
//! failures can be misinterpreted as bugs", §1): it localizes the
//! inconsistency a failing replay saw.

use serde::{Deserialize, Serialize};

use super::kappa::{ConsistencyMetrics, KappaBounds, KappaConfig};
use super::matching::Matching;
use super::pair::PairAnalyzer;
use super::trial::Trial;

/// One window's verdict.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WindowScore {
    /// Window index.
    pub index: usize,
    /// Range of baseline (trial A) packet positions covered.
    pub a_range: (usize, usize),
    /// Metrics computed over just this window's packets.
    pub metrics: ConsistencyMetrics,
    /// Common packets in the window.
    pub common: usize,
    /// Error bound on this window's κ. Batch analysis is exact
    /// (`lo == hi == metrics.kappa`); a bounded-lookahead stream widens
    /// the interval by its accounted estimation error. `None` on scores
    /// serialized before the bound existed.
    #[serde(default)]
    pub bounds: Option<KappaBounds>,
}

/// κ per window of the baseline trial.
///
/// Windows partition trial A's positions into `windows` equal spans; each
/// window is scored as a standalone pair of sub-trials (so every window's
/// metrics are normalized to its own span, and a globally-bad run shows
/// *which* windows carry the damage).
///
/// `windows == 0` is clamped to 1 (a single whole-trial window): callers
/// deriving a window count from a duration or rate can round down to zero
/// without poisoning a whole report run.
pub fn windowed_kappa(a: &Trial, b: &Trial, windows: usize) -> Vec<WindowScore> {
    windowed_kappa_with(a, b, windows, &KappaConfig::paper())
}

/// [`windowed_kappa`] with a custom κ configuration.
pub fn windowed_kappa_with(
    a: &Trial,
    b: &Trial,
    windows: usize,
    cfg: &KappaConfig,
) -> Vec<WindowScore> {
    let windows = windows.max(1);
    if a.is_empty() {
        return Vec::new();
    }
    let m = Matching::build(a, b);
    // b_idx -> a_idx for matched packets (for slicing B per window).
    let mut b_to_a = vec![usize::MAX; b.len()];
    for p in &m.pairs {
        b_to_a[p.b_idx] = p.a_idx;
    }

    let per = a.len().div_ceil(windows);
    let mut out = Vec::with_capacity(windows);
    for w in 0..windows {
        let lo = w * per;
        let hi = ((w + 1) * per).min(a.len());
        if lo >= hi {
            break;
        }
        // Sub-trial A: positions lo..hi. Sub-trial B: its packets whose
        // match lies in the window, in B order, plus B's unmatched
        // packets are ignored (they belong to no window).
        let sub_a: Trial = a.observations()[lo..hi]
            .iter()
            .map(|o| (o.id, o.t_ps))
            .collect();
        let sub_b: Trial = b
            .observations()
            .iter()
            .enumerate()
            .filter(|(j, _)| {
                let ai = b_to_a[*j];
                ai != usize::MAX && (lo..hi).contains(&ai)
            })
            .map(|(_, o)| (o.id, o.t_ps))
            .collect();
        let sub_a = sub_a.rezeroed();
        let sub_b = sub_b.rezeroed();
        let mut pa = PairAnalyzer::new(&sub_a, &sub_b).config(*cfg);
        let metrics = pa.metrics();
        let common = pa.common();
        out.push(WindowScore {
            index: w,
            a_range: (lo, hi),
            metrics,
            common,
            bounds: Some(KappaBounds::exact(metrics.kappa)),
        });
    }
    out
}

/// The window with the worst κ, if any.
///
/// Uses [`f64::total_cmp`]: the engine never produces NaN, but
/// `WindowScore` is fully public, so a hand-constructed or deserialized
/// NaN cell must degrade deterministically (NaN orders above every real
/// κ, so it is never picked while a real window exists) instead of
/// panicking the whole report.
pub fn worst_window(scores: &[WindowScore]) -> Option<&WindowScore> {
    scores
        .iter()
        .min_by(|x, y| x.metrics.kappa.total_cmp(&y.metrics.kappa))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cbr(n: u64, gap: u64) -> Trial {
        let mut t = Trial::new();
        for i in 0..n {
            t.push_tagged(0, 0, i, i * gap);
        }
        t
    }

    #[test]
    fn identical_runs_score_one_everywhere() {
        let a = cbr(1_000, 1_000);
        let scores = windowed_kappa(&a, &a.clone(), 10);
        assert_eq!(scores.len(), 10);
        for s in &scores {
            assert_eq!(s.metrics.kappa, 1.0, "window {}", s.index);
            assert_eq!(s.common, 100);
        }
    }

    #[test]
    fn worst_window_tolerates_nan_scores() {
        // WindowScore is fully public: a hand-built (or deserialized) NaN
        // κ used to panic worst_window via partial_cmp. It must now pick
        // the worst *real* window deterministically, and only surface a
        // NaN when no finite window exists.
        let score = |index: usize, kappa: f64| {
            let mut metrics =
                crate::metrics::kappa::KappaConfig::paper().combine(0.0, 0.0, 0.0, 0.0);
            metrics.kappa = kappa;
            WindowScore {
                index,
                a_range: (0, 0),
                metrics,
                common: 0,
                bounds: None,
            }
        };
        let scores = vec![score(0, 0.9), score(1, f64::NAN), score(2, 0.4)];
        assert_eq!(worst_window(&scores).unwrap().index, 2);
        let all_nan = vec![score(0, f64::NAN), score(1, f64::NAN)];
        assert!(worst_window(&all_nan).unwrap().metrics.kappa.is_nan());
        assert!(worst_window(&[]).is_none());
    }

    #[test]
    fn localized_damage_shows_in_its_window_only() {
        let a = cbr(1_000, 1_000);
        // Run B: packets 500..600 arrive with wild jitter.
        let mut b = Trial::new();
        for i in 0..1_000u64 {
            let j = if (500..600).contains(&i) {
                (i % 7) * 400 // up to 2.4 ns of gap violence in a 1 ns cadence
            } else {
                0
            };
            b.push_tagged(0, 0, i, i * 1_000 + j);
        }
        let scores = windowed_kappa(&a, &b, 10);
        let worst = worst_window(&scores).unwrap();
        assert_eq!(worst.index, 5, "damage must localize to window 5");
        // Other windows stay near-perfect.
        for s in &scores {
            if s.index != 5 {
                assert!(s.metrics.kappa > 0.99, "window {} kappa {}", s.index, s.metrics.kappa);
            }
        }
        assert!(worst.metrics.kappa < 0.95);
    }

    #[test]
    fn drops_accrue_to_the_window_that_lost_them() {
        let a = cbr(400, 1_000);
        // B loses packets 100..120 (window 1 of 4).
        let mut b = Trial::new();
        for i in 0..400u64 {
            if !(100..120).contains(&i) {
                b.push_tagged(0, 0, i, i * 1_000);
            }
        }
        let scores = windowed_kappa(&a, &b, 4);
        assert!(scores[1].metrics.u > 0.0);
        assert_eq!(scores[0].metrics.u, 0.0);
        assert_eq!(scores[2].metrics.u, 0.0);
        assert_eq!(scores[1].common, 80);
    }

    #[test]
    fn window_count_edge_cases() {
        let a = cbr(5, 10);
        // More windows than packets: one packet per window, no panic.
        let scores = windowed_kappa(&a, &a.clone(), 10);
        assert_eq!(scores.len(), 5);
        // Single window == global metrics.
        let one = windowed_kappa(&a, &a.clone(), 1);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].a_range, (0, 5));
    }

    #[test]
    fn empty_trials() {
        assert!(windowed_kappa(&Trial::new(), &Trial::new(), 4).is_empty());
        assert!(worst_window(&[]).is_none());
    }

    #[test]
    fn zero_windows_clamps_to_one() {
        let a = cbr(3, 1);
        let zero = windowed_kappa(&a, &a.clone(), 0);
        let one = windowed_kappa(&a, &a.clone(), 1);
        assert_eq!(zero.len(), 1);
        assert_eq!(zero[0].a_range, one[0].a_range);
        assert_eq!(
            zero[0].metrics.kappa.to_bits(),
            one[0].metrics.kappa.to_bits()
        );
    }
}
