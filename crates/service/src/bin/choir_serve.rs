//! `choir-serve`: run the κ-as-a-service daemon.
//!
//! ```text
//! choir-serve [--addr HOST:PORT] [--data-dir DIR]
//!             [--checkpoint-every N] [--snapshot-every N]
//! ```
//!
//! Binds the address (default `127.0.0.1:7415`, port 0 for ephemeral),
//! recovers any durable state under the data dir, prints the bound
//! address on stdout, and serves until a client sends `Shutdown`
//! (`choir-ctl <addr> shutdown`).

use std::process::ExitCode;

use choir_service::{Daemon, DaemonConfig};

fn usage() -> ExitCode {
    eprintln!(
        "usage: choir-serve [--addr HOST:PORT] [--data-dir DIR] \
         [--checkpoint-every N] [--snapshot-every N]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7415".to_string();
    let mut cfg = DaemonConfig::new("choir-service-data");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let Some(v) = args.next() else { return usage() };
        match a.as_str() {
            "--addr" => addr = v,
            "--data-dir" => cfg.data_dir = v.into(),
            "--checkpoint-every" => match v.parse() {
                Ok(n) => cfg.checkpoint_every_records = n,
                Err(_) => return usage(),
            },
            "--snapshot-every" => match v.parse() {
                Ok(n) => cfg.snapshot_every = n,
                Err(_) => return usage(),
            },
            _ => return usage(),
        }
    }

    let handle = match Daemon::spawn(cfg, &addr) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("choir-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", handle.addr());
    // A Shutdown request checkpoints, stops the accept loop, and lets
    // this join return.
    handle.wait();
    ExitCode::SUCCESS
}
